package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/overhead"
	"repro/internal/partition"
)

// TestSweepResultJSONRoundTrip runs a tiny sweep and checks the wire
// form carries the cells, derived utilizations and admission rates.
func TestSweepResultJSONRoundTrip(t *testing.T) {
	res := experiment.Run(experiment.Config{
		Cores: 2, Tasks: 6, SetsPerPoint: 5, Seed: 9,
		Utilizations: []float64{1.2, 1.5},
		Algorithms:   []partition.Algorithm{partition.FFD, partition.TS},
		Model:        overhead.PaperModel(),
	})
	var buf bytes.Buffer
	if err := SweepResultJSON(res).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back SweepJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cores != 2 || back.SetsPerPoint != 5 || len(back.Series) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	for si, s := range back.Series {
		if s.Algorithm != res.Series[si].Algorithm {
			t.Fatalf("series %d: %q != %q", si, s.Algorithm, res.Series[si].Algorithm)
		}
		for pi, p := range s.Points {
			want := res.Series[si].Points[pi]
			if p.Accepted != want.Accepted || p.Total != want.Total || p.Ratio != want.Ratio {
				t.Fatalf("cell %d/%d: %+v != %+v", si, pi, p, want)
			}
			if p.PerCoreUtilization != p.TotalUtilization/2 {
				t.Fatalf("per-core utilization not derived: %+v", p)
			}
		}
	}
	if back.Admission.Probes != res.Admission.Probes {
		t.Fatalf("admission: %+v != %+v", back.Admission, res.Admission)
	}
}

// TestAdmissionJSONRates checks the derived-rate fields.
func TestAdmissionJSONRates(t *testing.T) {
	s := analysis.AdmissionStats{Probes: 10, CoreTests: 8, VerdictHits: 2, FPSolves: 4, FPIterations: 12, WarmStarts: 1}
	j := AdmissionJSON(s)
	if j.CacheHitRate != 0.25 || j.MeanFPIterations != 3 || j.WarmStartRate != 0.25 {
		t.Fatalf("rates: %+v", j)
	}
}
