// Package report renders the cross-validation artifacts a user wants
// after scheduling a task set: the assignment summary, the per-task
// comparison of analysis response-time bounds against simulated
// maxima, and the overhead breakdown in the paper's categories.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/timeq"
)

// TaskRow is one line of the response-time comparison.
type TaskRow struct {
	Task *task.Task
	// Split reports the number of parts (1 = unsplit).
	Parts int
	// Bound is the analysis worst-case response time (chain-wide for
	// split tasks); zero when the analysis path is unavailable.
	Bound timeq.Time
	// Observed is the largest simulated response time.
	Observed timeq.Time
	// Jobs is the number of completed jobs observed.
	Jobs int
}

// Margin returns Bound − Observed (how much slack the analysis left).
func (r TaskRow) Margin() timeq.Time { return r.Bound - r.Observed }

// Report captures one assignment's validation artifacts.
type Report struct {
	Assignment *task.Assignment
	Model      *overhead.Model
	Result     *sched.Result
	Rows       []TaskRow
}

// New builds a report for a fixed-priority assignment: it derives the
// per-task analysis bounds (cumulative jitter + final-part response)
// and joins them with the simulation result.
func New(a *task.Assignment, model *overhead.Model, res *sched.Result) (*Report, error) {
	if model == nil {
		model = overhead.Zero()
	}
	rts, ok := analysis.ResponseTimes(a, model)
	if !ok {
		return nil, fmt.Errorf("report: assignment fails the analysis it was admitted under")
	}
	bound := map[task.ID]timeq.Time{}
	for e, r := range rts {
		if tot := e.Jitter + r; tot > bound[e.Task.ID] {
			bound[e.Task.ID] = tot
		}
	}
	rep := &Report{Assignment: a, Model: model, Result: res}
	for _, t := range a.AllTasks() {
		row := TaskRow{Task: t, Parts: 1, Bound: bound[t.ID]}
		if sp := a.SplitOf(t); sp != nil {
			row.Parts = len(sp.Parts)
		}
		if res != nil {
			row.Observed = res.MaxResponse[t.ID]
			row.Jobs = res.Jobs[t.ID]
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool { return rep.Rows[i].Task.ID < rep.Rows[j].Task.ID })
	return rep, nil
}

// Violations returns the rows whose observation exceeds the bound —
// always empty unless the analysis or simulator has a bug.
func (r *Report) Violations() []TaskRow {
	var out []TaskRow
	for _, row := range r.Rows {
		if row.Observed > row.Bound {
			out = append(out, row)
		}
	}
	return out
}

// ResponseTable renders the bound-vs-observed comparison.
func (r *Report) ResponseTable() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-6s %-7s %-5s %-12s %-12s %-12s %-12s %s\n",
		"task", "period", "parts", "WCET", "bound", "observed", "margin", "jobs"))
	for _, row := range r.Rows {
		sb.WriteString(fmt.Sprintf("τ%-5d %-7v %-5d %-12v %-12v %-12v %-12v %d\n",
			row.Task.ID, row.Task.Period, row.Parts, row.Task.WCET,
			row.Bound, row.Observed, row.Margin(), row.Jobs))
	}
	return sb.String()
}

// OverheadTable renders the simulated overhead breakdown using the
// paper's category names, with per-category shares.
func (r *Report) OverheadTable() string {
	if r.Result == nil {
		return "no simulation attached\n"
	}
	s := r.Result.Stats
	total := s.TotalOverhead()
	var cats []string
	for c := range s.OverheadTime {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("overhead %v over %v on %d cores (%.4f%% of core time)\n",
		total, s.Horizon, r.Assignment.NumCores, 100*s.OverheadRatio(r.Assignment.NumCores)))
	for _, c := range cats {
		v := s.OverheadTime[c]
		share := 0.0
		if total > 0 {
			share = 100 * float64(v) / float64(total)
		}
		sb.WriteString(fmt.Sprintf("  %-7s %-12v %5.1f%%\n", c, v, share))
	}
	sb.WriteString(fmt.Sprintf("events: %d releases, %d finishes, %d preemptions, %d migrations, %d misses\n",
		s.Releases, s.Finishes, s.Preemptions, s.Migrations, s.Misses))
	return sb.String()
}

// String renders the full report.
func (r *Report) String() string {
	return r.Assignment.String() + "\n" + r.ResponseTable() + "\n" + r.OverheadTable()
}
