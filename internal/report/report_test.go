package report

import (
	"strings"
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

func buildReport(t *testing.T) *Report {
	t.Helper()
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.2, Seed: 77})
	model := overhead.PaperModel()
	var rep *Report
	for _, s := range g.Batch(5) {
		a, err := partition.TS.Partition(s.Clone(), 4, model)
		if err != nil {
			continue
		}
		res, err := sched.Run(a, sched.Config{Model: model, Horizon: 2 * timeq.Second})
		if err != nil {
			t.Fatal(err)
		}
		rep, err = New(a, model, res)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	t.Fatal("no set admitted")
	return nil
}

func TestReportRowsComplete(t *testing.T) {
	rep := buildReport(t)
	if len(rep.Rows) != 10 {
		t.Fatalf("rows %d, want 10", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Bound <= 0 {
			t.Errorf("τ%d: bound %v", row.Task.ID, row.Bound)
		}
		if row.Jobs <= 0 {
			t.Errorf("τ%d: no jobs observed", row.Task.ID)
		}
		if row.Observed <= 0 {
			t.Errorf("τ%d: no response observed", row.Task.ID)
		}
		if row.Parts < 1 {
			t.Errorf("τ%d: parts %d", row.Task.ID, row.Parts)
		}
	}
}

func TestNoViolations(t *testing.T) {
	rep := buildReport(t)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("bound violations: %v", v)
	}
	for _, row := range rep.Rows {
		if row.Margin() < 0 {
			t.Fatalf("negative margin on τ%d", row.Task.ID)
		}
	}
}

func TestTables(t *testing.T) {
	rep := buildReport(t)
	rt := rep.ResponseTable()
	for _, want := range []string{"task", "bound", "observed", "margin", "τ1"} {
		if !strings.Contains(rt, want) {
			t.Errorf("response table missing %q", want)
		}
	}
	ot := rep.OverheadTable()
	for _, want := range []string{"overhead", "rls", "sch", "releases"} {
		if !strings.Contains(ot, want) {
			t.Errorf("overhead table missing %q:\n%s", want, ot)
		}
	}
	if !strings.Contains(rep.String(), "assignment over") {
		t.Error("full report missing assignment summary")
	}
}

func TestReportWithoutSimulation(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 6, TotalUtilization: 1.5, Seed: 3})
	a, err := partition.TS.Partition(g.Next(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.OverheadTable(), "no simulation") {
		t.Error("nil-result overhead table")
	}
	for _, row := range rep.Rows {
		if row.Observed != 0 || row.Jobs != 0 {
			t.Error("phantom observations")
		}
	}
}

func TestReportRejectsUnschedulable(t *testing.T) {
	// Build an assignment that fails analysis: everything on core 0.
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.0, Seed: 5})
	s := g.Next()
	a, err := partition.TS.Partition(s, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overload it behind the analysis' back.
	extra := g.Next()
	for _, tk := range extra.Tasks {
		tk.ID += 100
		a.Place(tk, 0)
	}
	if _, err := New(a, nil, nil); err == nil {
		t.Fatal("overloaded assignment accepted by report")
	}
}
