package sched

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/taskgen"
	"repro/internal/timeq"
	"repro/internal/trace"
)

// The binomial-heap and red-black-tree ready-queue backends implement
// the same (key, FIFO) ordering, so a simulation run must be
// event-for-event identical across them. Randomized task sets, both
// policies, splits included.
func TestReadyQueueBackendsEquivalent(t *testing.T) {
	model := overhead.PaperModel()
	algs := []partition.Algorithm{partition.TS, partition.WM}
	runs := 0
	for seed := int64(1); seed <= 12; seed++ {
		set := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.5, Seed: seed}).Next()
		for _, alg := range algs {
			a, err := alg.Partition(set.Clone(), 4, model)
			if err != nil {
				continue // unschedulable draw; try the next
			}
			var traces [2]*trace.Buffer
			for i, backend := range []QueueBackend{BinomialHeap, RedBlackTree} {
				buf := &trace.Buffer{}
				res, err := Run(a, Config{
					Model:      model,
					Horizon:    500 * timeq.Millisecond,
					Recorder:   buf,
					ReadyQueue: backend,
				})
				if err != nil {
					t.Fatalf("seed %d %s %v: %v", seed, alg.Name(), backend, err)
				}
				if !res.Schedulable() {
					t.Fatalf("seed %d %s %v: admitted set missed deadlines", seed, alg.Name(), backend)
				}
				traces[i] = buf
			}
			if len(traces[0].Events) == 0 {
				t.Fatalf("seed %d %s: empty trace", seed, alg.Name())
			}
			if len(traces[0].Events) != len(traces[1].Events) {
				t.Fatalf("seed %d %s: %d events on %v vs %d on %v", seed, alg.Name(),
					len(traces[0].Events), BinomialHeap, len(traces[1].Events), RedBlackTree)
			}
			for i := range traces[0].Events {
				if traces[0].Events[i] != traces[1].Events[i] {
					t.Fatalf("seed %d %s: event %d diverges:\n  %v: %v\n  %v: %v",
						seed, alg.Name(), i,
						BinomialHeap, traces[0].Events[i], RedBlackTree, traces[1].Events[i])
				}
			}
			runs++
		}
	}
	if runs < 8 {
		t.Fatalf("only %d schedulable draws; test grid too hard", runs)
	}
}

// The backend must not change aggregate outcomes either (a cheaper
// invariant that would catch ordering-neutral accounting bugs).
func TestReadyQueueBackendStats(t *testing.T) {
	set := taskgen.New(taskgen.Config{N: 12, TotalUtilization: 3.0, Seed: 99}).Next()
	a, err := partition.FFD.Partition(set, 4, nil)
	if err != nil {
		t.Skip("draw not schedulable")
	}
	var stats [2]Stats
	for i, backend := range []QueueBackend{BinomialHeap, RedBlackTree} {
		res, err := Run(a, Config{Horizon: timeq.Second, ReadyQueue: backend})
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = res.Stats
	}
	if stats[0].Releases != stats[1].Releases ||
		stats[0].Finishes != stats[1].Finishes ||
		stats[0].Preemptions != stats[1].Preemptions ||
		stats[0].Migrations != stats[1].Migrations ||
		stats[0].ExecTime != stats[1].ExecTime {
		t.Fatalf("aggregate stats diverge:\n  %+v\n  %+v", stats[0], stats[1])
	}
}
