package sched

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// Work conservation and accounting invariants of the engine, checked
// over random admitted assignments under both policies:
//
//  1. ExecTime + TotalOverhead ≤ cores × horizon (no core is ever
//     double-booked);
//  2. ExecTime equals the executed budget: ΣC over completed jobs,
//     plus at most one partially executed job per core;
//  3. Finishes ≤ Releases ≤ Finishes + one in-flight job per task;
//  4. every completed job of a split task migrated exactly
//     parts−1 times.
func TestAccountingInvariants(t *testing.T) {
	model := overhead.PaperModel()
	cases := []struct {
		name   string
		alg    partition.Algorithm
		policy Policy
	}{
		{"fp/fpts", partition.TS, FixedPriority},
		{"edf/wm", partition.WM, EDF},
	}
	for _, tc := range cases {
		g := taskgen.New(taskgen.Config{N: 12, TotalUtilization: 3.4, Seed: 1337})
		checked := 0
		for _, s := range g.Batch(6) {
			a, err := tc.alg.Partition(s.Clone(), 4, model)
			if err != nil {
				continue
			}
			checked++
			horizon := 2 * timeq.Second
			r, err := Run(a, Config{Policy: tc.policy, Model: model, Horizon: horizon})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if !r.Schedulable() {
				t.Fatalf("%s: admitted set missed", tc.name)
			}
			// (1) core time not double-booked.
			total := timeq.MulCount(horizon, int64(a.NumCores))
			if used := r.Stats.ExecTime + r.Stats.TotalOverhead(); used > total {
				t.Fatalf("%s: used %v of %v core time", tc.name, used, total)
			}
			// (2) executed budget accounting.
			var completed timeq.Time
			for _, tk := range a.AllTasks() {
				completed += timeq.MulCount(tk.WCET, int64(r.Jobs[tk.ID]))
			}
			slack := timeq.Time(0)
			for _, tk := range a.AllTasks() {
				slack += tk.WCET // at most one partial job per task
			}
			if r.Stats.ExecTime < completed || r.Stats.ExecTime > completed+slack {
				t.Fatalf("%s: exec %v outside [%v, %v]", tc.name, r.Stats.ExecTime, completed, completed+slack)
			}
			// (3) release/finish balance.
			if r.Stats.Finishes > r.Stats.Releases {
				t.Fatalf("%s: finishes %d > releases %d", tc.name, r.Stats.Finishes, r.Stats.Releases)
			}
			if r.Stats.Releases-r.Stats.Finishes > s.Len() {
				t.Fatalf("%s: %d jobs in flight, more than one per task", tc.name, r.Stats.Releases-r.Stats.Finishes)
			}
			// (4) migrations per split job.
			wantMigr := 0
			for _, sp := range a.Splits {
				wantMigr += (len(sp.Parts) - 1) * r.Jobs[sp.Task.ID]
			}
			// In-flight split jobs may add partial chains.
			extra := 0
			for _, sp := range a.Splits {
				extra += len(sp.Parts) - 1
			}
			if r.Stats.Migrations < wantMigr || r.Stats.Migrations > wantMigr+extra {
				t.Fatalf("%s: migrations %d outside [%d, %d]", tc.name, r.Stats.Migrations, wantMigr, wantMigr+extra)
			}
		}
		if checked == 0 {
			t.Fatalf("%s: nothing admitted; invariants unchecked", tc.name)
		}
	}
}

// Zero-overhead simulation of an idle-heavy set: exec time must be
// exactly jobs × WCET and overhead identically zero.
func TestExactExecAccountingZeroModel(t *testing.T) {
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(1), Period: ms(10)},
		&task.Task{ID: 2, WCET: ms(2), Period: ms(20)},
	)
	r, err := Run(a, Config{Horizon: ms(200)})
	if err != nil {
		t.Fatal(err)
	}
	want := timeq.MulCount(ms(1), 20) + timeq.MulCount(ms(2), 10)
	if r.Stats.ExecTime != want {
		t.Fatalf("exec %v, want %v", r.Stats.ExecTime, want)
	}
	if r.Stats.TotalOverhead() != 0 {
		t.Fatalf("overhead %v under zero model", r.Stats.TotalOverhead())
	}
}
