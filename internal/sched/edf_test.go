package sched

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
	"repro/internal/trace"
)

func TestEDFScheduleBeatsRM(t *testing.T) {
	// C=(2,4), T=(5,7): EDF-schedulable (U≈0.971), RM is not.
	mk := func() *task.Assignment {
		return singleCore(
			&task.Task{ID: 1, WCET: ms(2), Period: ms(5)},
			&task.Task{ID: 2, WCET: ms(4), Period: ms(7)},
		)
	}
	edf, err := Run(mk(), Config{Policy: EDF, Horizon: ms(350)})
	if err != nil {
		t.Fatal(err)
	}
	if !edf.Schedulable() {
		t.Fatalf("EDF missed: %v", edf.Misses[0])
	}
	fp, err := Run(mk(), Config{Policy: FixedPriority, Horizon: ms(350)})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Schedulable() {
		t.Fatal("RM should miss on this classic set")
	}
}

func TestEDFFullUtilization(t *testing.T) {
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(2), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(10)},
	)
	r, err := Run(a, Config{Policy: EDF, Horizon: ms(400)})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedulable() {
		t.Fatalf("EDF at U=1 missed: %v", r.Misses[0])
	}
}

func TestEDFRequiresWindowsOnSplits(t *testing.T) {
	t1 := &task.Task{ID: 1, WCET: ms(6), Period: ms(20)}
	a := task.NewAssignment(2)
	a.Splits = append(a.Splits, &task.Split{Task: t1, Parts: []task.Part{
		{Core: 0, Budget: ms(3)}, {Core: 1, Budget: ms(3)},
	}})
	if _, err := Run(a, Config{Policy: EDF}); err == nil {
		t.Fatal("windowless split accepted under EDF")
	}
}

func TestEDFWindowConstrainedMigration(t *testing.T) {
	// A split with 10ms windows: the second part must never become
	// ready before release + 10ms even though the first part
	// finishes at 3ms.
	t1 := &task.Task{ID: 1, WCET: ms(6), Period: ms(20)}
	a := task.NewAssignment(2)
	a.Splits = append(a.Splits, &task.Split{
		Task:    t1,
		Parts:   []task.Part{{Core: 0, Budget: ms(3)}, {Core: 1, Budget: ms(3)}},
		Windows: []timeq.Time{ms(10), ms(10)},
	})
	buf := &trace.Buffer{}
	r, err := Run(a, Config{Policy: EDF, Horizon: ms(100), Recorder: buf})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedulable() {
		t.Fatalf("missed: %v", r.Misses)
	}
	ins := buf.Filter(trace.MigrateIn)
	if len(ins) != 5 {
		t.Fatalf("migrations in: %d, want 5", len(ins))
	}
	for i, ev := range ins {
		release := timeq.Time(i) * ms(20)
		if ev.T < release+ms(10) {
			t.Fatalf("part 1 arrived at %v, before window start %v", ev.T, release+ms(10))
		}
	}
	// Response time = window start + part budget = 13ms.
	if r.MaxResponse[1] != ms(13) {
		t.Fatalf("response %v, want 13ms", r.MaxResponse[1])
	}
}

func TestPolicyString(t *testing.T) {
	if FixedPriority.String() != "fixed-priority" || EDF.String() != "EDF" {
		t.Error("policy names")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy name empty")
	}
}

// The EDF soundness property: assignments admitted by the EDF
// demand-bound analysis never miss in an EDF simulation.
func TestEDFAdmittedNeverMisses(t *testing.T) {
	models := map[string]*overhead.Model{
		"zero":  overhead.Zero(),
		"paper": overhead.PaperModel(),
	}
	algs := []partition.Algorithm{partition.WM, partition.EDFFFD, partition.EDFWFD}
	for name, model := range models {
		for _, alg := range algs {
			g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.4, Seed: 909})
			for si, s := range g.Batch(8) {
				a, err := alg.Partition(s.Clone(), 4, model)
				if err != nil {
					continue
				}
				r, err := Run(a, Config{Policy: EDF, Model: model, Horizon: 3 * timeq.Second})
				if err != nil {
					t.Fatalf("%s/%s set %d: %v", alg.Name(), name, si, err)
				}
				if !r.Schedulable() {
					t.Errorf("%s/%s set %d: admitted but missed: %v (first of %d)",
						alg.Name(), name, si, r.Misses[0], len(r.Misses))
				}
			}
		}
	}
}
