package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/binheap"
	"repro/internal/overhead"
	"repro/internal/rbtree"
	"repro/internal/task"
	"repro/internal/timeq"
	"repro/internal/trace"
)

// jobState tracks where a job currently lives.
type jobState int

const (
	jsSleeping jobState = iota // in a sleep queue (or not yet released)
	jsReady                    // in a ready queue
	jsRunning                  // executing on a core, or staged to resume
	jsInFlight                 // migrating between cores
)

// job is the runtime object for one task. One job object per task is
// reused across periods (jobs of a task are sequential).
type job struct {
	t     *task.Task
	split *task.Split // nil for normal tasks
	home  int         // core hosting releases and the sleep entry
	// staticPrio is the fixed-priority key (split parts boosted);
	// prio is the current dispatching key — equal to staticPrio
	// under fixed priority, the absolute part deadline under EDF.
	staticPrio int64
	prio       int64

	state jobState
	core  int // hosting core while ready/running

	// Handle into the hosting sleep queue.
	sleepNode *rbtree.Node[*job]

	// Per-instance fields.
	active    bool
	release   timeq.Time
	deadline  timeq.Time
	partIdx   int
	remaining timeq.Time // remaining budget of the current part
	extra     timeq.Time // pending cache-reload time, consumed first
	segStart  timeq.Time // when the current execution span started
	gen       int        // invalidates stale events
}

// partBudget returns the budget of part i (the WCET for normal tasks).
func (j *job) partBudget(i int) timeq.Time {
	if j.split == nil {
		return j.t.WCET
	}
	return j.split.Parts[i].Budget
}

// lastPart reports whether the current part is the final one.
func (j *job) lastPart() bool {
	return j.split == nil || j.partIdx == len(j.split.Parts)-1
}

// partCore returns the core of part i.
func (j *job) partCore(i int) int {
	if j.split == nil {
		return j.home
	}
	return j.split.Parts[i].Core
}

// core is one processor: the paper's per-core ready queue (binomial
// heap, keyed by priority) and sleep queue (red-black tree, keyed by
// next release time).
type core struct {
	id    int
	n     int // entities hosted here: the N of δ(N)/θ(N)
	ready readyQueue
	sleep rbtree.Tree[*job]

	running *job
	// kernelUntil marks the end of the in-progress kernel segment;
	// events targeting the core defer to it.
	kernelUntil timeq.Time
	// pendingResume is the job staged to run when the segment ends.
	pendingResume *job
}

// evKind discriminates engine events.
type evKind int

const (
	evWake      evKind = iota // release timer on a core
	evSegEnd                  // kernel segment finished
	evJobDone                 // running job's execution span complete
	evMigArrive               // migrated part lands on the destination
	evResched                 // deferred scheduling check
)

// event is one entry in the global event queue.
type event struct {
	kind evKind
	core int
	j    *job
	gen  int
}

type engine struct {
	a       *task.Assignment
	model   *overhead.Model
	rec     trace.Recorder
	horizon timeq.Time
	policy  Policy

	cores []*core
	jobs  []*job
	eq    binheap.Heap[*event] // keyed by time; FIFO among equal times
	now   timeq.Time

	// Sporadic arrivals: each next release is delayed by a uniform
	// draw from [0, jitter] (nil rng = strictly periodic).
	jitter timeq.Time
	rng    *rand.Rand

	stats        Stats
	misses       []Miss
	maxResponse  map[task.ID]timeq.Time
	jobCount     map[task.ID]int
	maxTardiness map[task.ID]timeq.Time
}

// maxEvents caps the run as a defense against engine bugs; generously
// above any legitimate experiment.
const maxEvents = 100_000_000

func newEngine(a *task.Assignment, model *overhead.Model, rec trace.Recorder, horizon timeq.Time, offsets map[task.ID]timeq.Time, backend QueueBackend) *engine {
	e := &engine{
		a: a, model: model, rec: rec, horizon: horizon,
		maxResponse:  make(map[task.ID]timeq.Time),
		jobCount:     make(map[task.ID]int),
		maxTardiness: make(map[task.ID]timeq.Time),
	}
	e.stats.OverheadTime = make(map[string]timeq.Time)
	e.stats.PerCore = make([]CoreStats, a.NumCores)
	e.stats.Horizon = horizon
	// The queue-size bound N is global — "the maximal number of
	// tasks in the queue" (Section 3) — and shared with the analysis.
	n := a.MaxTasksPerCore()
	for c := 0; c < a.NumCores; c++ {
		e.cores = append(e.cores, &core{id: c, n: n, ready: newReadyQueue(backend)})
	}
	mkJob := func(t *task.Task, sp *task.Split, home int, prio int64) {
		j := &job{t: t, split: sp, home: home, staticPrio: prio, prio: prio, state: jsSleeping, core: home}
		e.jobs = append(e.jobs, j)
		off := offsets[t.ID]
		j.sleepNode = e.cores[home].sleep.Insert(int64(off), j)
		e.schedule(off, &event{kind: evWake, core: home})
	}
	for c, ts := range a.Normal {
		for _, t := range ts {
			mkJob(t, nil, c, int64(t.Priority))
		}
	}
	for _, sp := range a.Splits {
		mkJob(sp.Task, sp, sp.Parts[0].Core, int64(sp.LocalPriority()))
	}
	return e
}

func (e *engine) schedule(t timeq.Time, ev *event) {
	e.eq.Insert(int64(t), ev)
}

// keyFor computes the job's current dispatching key: the static local
// priority under fixed-priority scheduling, the absolute deadline of
// the current part under EDF (the window end for split parts).
func (e *engine) keyFor(j *job) int64 {
	if e.policy != EDF {
		return j.staticPrio
	}
	if j.split != nil {
		return int64(j.release + j.split.WindowDeadline(j.partIdx))
	}
	return int64(j.release + j.t.EffectiveDeadline())
}

// charge books overhead time of one category and emits a trace event.
func (e *engine) charge(c int, label string, d timeq.Time) timeq.Time {
	if d > 0 {
		e.stats.OverheadTime[label] += d
		e.stats.PerCore[c].Overhead += d
		e.rec.Record(trace.Event{T: e.now, Core: c, Kind: trace.Overhead, Dur: d, Label: label})
	}
	return d
}

// run drains the event queue up to the horizon.
func (e *engine) run() error {
	for n := 0; ; n++ {
		if n > maxEvents {
			return fmt.Errorf("sched: exceeded %d events; engine livelock?", maxEvents)
		}
		it := e.eq.ExtractMin()
		if it == nil {
			break
		}
		t := timeq.Time(it.Key)
		if t >= e.horizon {
			break
		}
		if t < e.now {
			return fmt.Errorf("sched: time went backwards (%v after %v)", t, e.now)
		}
		e.now = t
		ev := it.Value
		switch ev.kind {
		case evWake:
			e.handleWake(ev.core)
		case evSegEnd:
			e.handleSegEnd(ev.core)
		case evJobDone:
			e.handleJobDone(ev.core, ev.j, ev.gen)
		case evMigArrive:
			e.handleMigArrive(ev.core, ev.j, ev.gen)
		case evResched:
			e.reschedule(ev.core)
		}
	}
	e.sweepUnfinished()
	return nil
}

// deferred reschedules an event of the given kind (targeting the
// core itself) to the end of the core's kernel segment, reporting
// whether it did so. The event is only allocated on the defer path,
// which keeps the common case allocation-free.
func (e *engine) deferred(c *core, kind evKind) bool {
	if c.kernelUntil > e.now {
		e.schedule(c.kernelUntil, &event{kind: kind, core: c.id})
		return true
	}
	return false
}

// finishPass ends a scheduling pass: the chosen job starts when the
// kernel segment of duration dur ends (immediately for dur = 0).
func (e *engine) finishPass(c *core, dur timeq.Time, resume *job) {
	if dur == 0 {
		if resume != nil && c.running == nil {
			e.dispatch(c, resume)
		}
		return
	}
	c.pendingResume = resume
	c.kernelUntil = e.now + dur
	e.schedule(c.kernelUntil, &event{kind: evSegEnd, core: c.id})
}

// pauseRunning halts the core's running job at the current time,
// consuming elapsed reload and execution time, and returns it.
func (e *engine) pauseRunning(c *core) *job {
	j := c.running
	if j == nil {
		return nil
	}
	elapsed := e.now - j.segStart
	reload := timeq.Min(elapsed, j.extra)
	if reload > 0 {
		e.charge(c.id, "cache", reload)
	}
	j.extra -= reload
	exec := elapsed - reload
	j.remaining -= exec
	e.stats.ExecTime += exec
	e.stats.PerCore[c.id].Exec += exec
	if j.remaining < 0 {
		panic("sched: job executed past its budget")
	}
	j.gen++ // invalidate the pending evJobDone
	c.running = nil
	return j
}

// dispatch starts (or resumes) j on core c at the current time. Any
// pending cache-reload time is paid at the head of the span.
func (e *engine) dispatch(c *core, j *job) {
	if c.running != nil {
		panic("sched: dispatch on busy core")
	}
	j.state = jsRunning
	j.core = c.id
	c.running = j
	j.segStart = e.now
	j.gen++
	e.schedule(e.now+j.extra+j.remaining, &event{kind: evJobDone, core: c.id, j: j, gen: j.gen})
	e.rec.Record(trace.Event{T: e.now, Core: c.id, Kind: trace.Dispatch, Task: j.t.ID, Part: j.partIdx})
}

// handleWake pops every due job from core c's sleep queue, releases
// them, and runs the scheduler — the paper's release() + sch() path.
func (e *engine) handleWake(cid int) {
	c := e.cores[cid]
	if e.deferred(c, evWake) {
		return
	}
	var dur timeq.Time
	released := 0
	for {
		mn := c.sleep.Min()
		if mn == nil || timeq.Time(mn.Key) > e.now {
			break
		}
		c.sleep.Delete(mn)
		j := mn.Value
		j.sleepNode = nil
		if j.active {
			// Jobs enter the sleep queue only on completion, so an
			// active job here is an engine bug, not an overrun: an
			// overrunning task simply re-enters the sleep queue late
			// and its next release slips (the behaviour of a
			// periodic thread looping work(); sleep_until(next)).
			panic("sched: active job in sleep queue")
		}
		j.active = true
		j.release = timeq.Time(mn.Key)
		j.deadline = j.release + j.t.EffectiveDeadline()
		j.partIdx = 0
		j.remaining = j.partBudget(0)
		j.extra = 0
		j.state = jsReady
		j.core = cid
		j.prio = e.keyFor(j)
		dur += e.charge(cid, "rls", e.model.Release)
		dur += e.charge(cid, "sq-del", e.model.QueueOpCost(overhead.SleepDelete, c.n, false))
		dur += e.charge(cid, "rq-add", e.model.QueueOpCost(overhead.ReadyAdd, c.n, false))
		c.ready.Insert(j.prio, j)
		e.stats.Releases++
		released++
		e.rec.Record(trace.Event{T: e.now, Core: cid, Kind: trace.Release, Task: j.t.ID})
	}
	if released == 0 {
		return // a sibling wake event already popped the batch
	}
	d2, resume := e.schedulerPass(c)
	e.finishPass(c, dur+d2, resume)
}

// schedulerPass charges sch, decides preemption against the currently
// running job, performs the queue operations, and returns the charged
// duration plus the job to run when the pass completes.
func (e *engine) schedulerPass(c *core) (timeq.Time, *job) {
	var dur timeq.Time
	dur += e.charge(c.id, "sch", e.model.Sched)
	candKey, _, haveCand := c.ready.Min()
	cur := c.running
	switchTo := haveCand && (cur == nil || candKey < cur.prio)
	if cur != nil {
		e.pauseRunning(c)
	}
	if !switchTo {
		return dur, cur
	}
	if cur != nil {
		// Preemption: requeue the victim; it pays a cache reload
		// when it resumes.
		dur += e.charge(c.id, "rq-add", e.model.QueueOpCost(overhead.ReadyAdd, c.n, false))
		cur.state = jsReady
		c.ready.Insert(cur.prio, cur)
		cur.extra += e.model.Cache.Delay(cur.t.WSS, false)
		e.stats.Preemptions++
		e.rec.Record(trace.Event{T: e.now, Core: c.id, Kind: trace.Preempt, Task: cur.t.ID, Part: cur.partIdx})
	}
	dur += e.charge(c.id, "rq-del", e.model.QueueOpCost(overhead.ReadyDelete, c.n, false))
	dur += e.charge(c.id, "cnt1", e.model.CtxSwitch)
	chosen := c.ready.ExtractMin()
	chosen.state = jsRunning // staged: the switch to it is in progress
	chosen.core = c.id
	return dur, chosen
}

// handleSegEnd resumes the job staged when the segment started.
func (e *engine) handleSegEnd(cid int) {
	c := e.cores[cid]
	resume := c.pendingResume
	c.pendingResume = nil
	if c.running != nil {
		return
	}
	if resume != nil && resume.active && resume.state == jsRunning {
		e.dispatch(c, resume)
		return
	}
	// The staged job vanished (aborted by an overrun); fall back to
	// the queue.
	if c.ready.Len() > 0 {
		e.reschedule(cid)
	} else {
		e.rec.Record(trace.Event{T: e.now, Core: cid, Kind: trace.Idle})
	}
}

// handleJobDone processes completion of the running job's execution
// span: job finish (normal/tail) or budget exhaustion (body part).
func (e *engine) handleJobDone(cid int, j *job, gen int) {
	c := e.cores[cid]
	if j.gen != gen || c.running != j {
		return // stale
	}
	e.pauseRunning(c)
	if j.remaining != 0 || j.extra != 0 {
		panic("sched: evJobDone with residual work")
	}
	if j.lastPart() {
		e.finishJob(c, j)
	} else {
		e.migrateOut(c, j)
	}
}

// finishJob runs the paper's cnt_swth() finish case: store context,
// insert the task into the home core's sleep queue (remote for a
// migrated tail), dispatch the next ready job.
func (e *engine) finishJob(c *core, j *job) {
	resp := e.now - j.release
	if resp > e.maxResponse[j.t.ID] {
		e.maxResponse[j.t.ID] = resp
	}
	e.jobCount[j.t.ID]++
	e.stats.Finishes++
	if e.now > j.deadline {
		e.recordMiss(j, e.now, false)
		if tard := e.now - j.deadline; tard > e.maxTardiness[j.t.ID] {
			e.maxTardiness[j.t.ID] = tard
		}
	}
	e.rec.Record(trace.Event{T: e.now, Core: c.id, Kind: trace.Finish, Task: j.t.ID, Part: j.partIdx})

	var dur timeq.Time
	dur += e.charge(c.id, "sch", e.model.Sched)
	dur += e.charge(c.id, "cnt2", e.model.CtxSwitch)
	home := e.cores[j.home]
	remote := j.home != c.id
	dur += e.charge(c.id, "sq-add", e.model.QueueOpCost(overhead.SleepAdd, home.n, remote))
	j.active = false
	j.state = jsSleeping
	j.core = j.home
	next := j.release + j.t.Period
	if e.rng != nil {
		// Sporadic task: the next arrival is at least a period away.
		next += timeq.Time(e.rng.Int63n(int64(e.jitter) + 1))
	}
	j.sleepNode = home.sleep.Insert(int64(next), j)
	// A job that overran its period has a next release in the past;
	// it wakes immediately (and will be recorded as late), the
	// release timestamp keeping the periodic grid.
	e.schedule(timeq.Max(next, e.now), &event{kind: evWake, core: j.home})

	d2, resume := e.pickNext(c)
	e.finishPass(c, dur+d2, resume)
}

// migrateOut runs the budget-exhaustion case: push the next part into
// the destination core's ready queue (remote add), then dispatch the
// next local job.
func (e *engine) migrateOut(c *core, j *job) {
	e.stats.Migrations++
	dest := e.cores[j.partCore(j.partIdx+1)]
	var dur timeq.Time
	dur += e.charge(c.id, "sch", e.model.Sched)
	dur += e.charge(c.id, "cnt2", e.model.CtxSwitch)
	dur += e.charge(c.id, "rq-add", e.model.QueueOpCost(overhead.ReadyAdd, dest.n, true))
	e.rec.Record(trace.Event{T: e.now, Core: c.id, Kind: trace.MigrateOut, Task: j.t.ID, Part: j.partIdx})

	j.partIdx++
	j.remaining = j.partBudget(j.partIdx)
	j.extra += e.model.Cache.Delay(j.t.WSS, true)
	j.state = jsInFlight
	j.prio = e.keyFor(j)
	arrive := e.now + dur
	if e.policy == EDF && j.split.HasWindows() {
		// Window-constrained splitting: the part becomes eligible at
		// its window start, never earlier (the analysis assumes the
		// window grid).
		arrive = timeq.Max(arrive, j.release+j.split.WindowStart(j.partIdx))
	}
	e.schedule(arrive, &event{kind: evMigArrive, core: dest.id, j: j, gen: j.gen})

	d2, resume := e.pickNext(c)
	e.finishPass(c, dur+d2, resume)
}

// pickNext selects the next ready job (if any) for the core,
// returning the δ-delete cost and the staged job.
func (e *engine) pickNext(c *core) (timeq.Time, *job) {
	if c.ready.Len() == 0 {
		return 0, nil
	}
	dur := e.charge(c.id, "rq-del", e.model.QueueOpCost(overhead.ReadyDelete, c.n, false))
	chosen := c.ready.ExtractMin()
	chosen.state = jsRunning
	chosen.core = c.id
	return dur, chosen
}

// handleMigArrive lands a migrated part in the destination ready
// queue and triggers the scheduler there.
func (e *engine) handleMigArrive(cid int, j *job, gen int) {
	if j.gen != gen || j.state != jsInFlight {
		return // aborted in flight
	}
	c := e.cores[cid]
	j.state = jsReady
	j.core = cid
	c.ready.Insert(j.prio, j)
	e.rec.Record(trace.Event{T: e.now, Core: cid, Kind: trace.MigrateIn, Task: j.t.ID, Part: j.partIdx})
	e.reschedule(cid)
}

// reschedule runs a scheduling check on core c (deferring into a
// running kernel segment): dispatch if idle, preempt if a
// higher-priority job is waiting.
func (e *engine) reschedule(cid int) {
	c := e.cores[cid]
	if e.deferred(c, evResched) {
		return
	}
	candKey, _, haveCand := c.ready.Min()
	if !haveCand {
		return
	}
	if c.running != nil && candKey >= c.running.prio {
		return // no preemption; the waiting job costs nothing now
	}
	dur, resume := e.schedulerPass(c)
	e.finishPass(c, dur, resume)
}

func (e *engine) recordMiss(j *job, at timeq.Time, overrun bool) {
	e.stats.Misses++
	e.misses = append(e.misses, Miss{Task: j.t.ID, Release: j.release, Deadline: j.deadline, At: at, Overrun: overrun})
	e.rec.Record(trace.Event{T: at, Core: j.core, Kind: trace.DeadlineMiss, Task: j.t.ID})
}

// sweepUnfinished flags jobs that are still in the system at the
// horizon with expired deadlines.
func (e *engine) sweepUnfinished() {
	for _, j := range e.jobs {
		if j.active && j.deadline < e.horizon {
			e.recordMiss(j, e.horizon, true)
		}
	}
}

func (e *engine) result() *Result {
	return &Result{
		Stats:        e.stats,
		Misses:       e.misses,
		MaxResponse:  e.maxResponse,
		Jobs:         e.jobCount,
		MaxTardiness: e.maxTardiness,
	}
}
