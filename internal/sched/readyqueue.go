package sched

import (
	"repro/internal/binheap"
	"repro/internal/rbtree"
)

// readyQueue abstracts the per-core ready queue so the engine can run
// on either of the paper's two kernel data structures. Both backends
// order by (key, FIFO insertion), so every scheduling decision — and
// hence the whole event trace — is identical across them; only the
// measured operation costs differ (Table 1).
type readyQueue interface {
	Len() int
	Insert(key int64, j *job)
	// Min returns the smallest (key, job) without removing it; ok is
	// false when the queue is empty.
	Min() (key int64, j *job, ok bool)
	// ExtractMin removes and returns the smallest job, or nil.
	ExtractMin() *job
}

// newReadyQueue builds the backend selected by the config.
func newReadyQueue(b QueueBackend) readyQueue {
	if b == RedBlackTree {
		return &rbtreeReady{}
	}
	return &binheapReady{}
}

// binheapReady is the paper's binomial-heap ready queue.
type binheapReady struct{ h binheap.Heap[*job] }

func (q *binheapReady) Len() int                 { return q.h.Len() }
func (q *binheapReady) Insert(key int64, j *job) { q.h.Insert(key, j) }

func (q *binheapReady) Min() (int64, *job, bool) {
	it := q.h.Min()
	if it == nil {
		return 0, nil, false
	}
	return it.Key, it.Value, true
}

func (q *binheapReady) ExtractMin() *job {
	it := q.h.ExtractMin()
	if it == nil {
		return nil
	}
	return it.Value
}

// rbtreeReady backs the ready queue with a red-black tree.
type rbtreeReady struct{ t rbtree.Tree[*job] }

func (q *rbtreeReady) Len() int                 { return q.t.Len() }
func (q *rbtreeReady) Insert(key int64, j *job) { q.t.Insert(key, j) }

func (q *rbtreeReady) Min() (int64, *job, bool) {
	n := q.t.Min()
	if n == nil {
		return 0, nil, false
	}
	return n.Key, n.Value, true
}

func (q *rbtreeReady) ExtractMin() *job {
	n := q.t.DeleteMin()
	if n == nil {
		return nil
	}
	return n.Value
}
