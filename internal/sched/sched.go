// Package sched is a discrete-event simulator of the paper's
// semi-partitioned kernel scheduler (Section 2): each core owns a
// ready queue (binomial heap) and a sleep queue (red-black tree);
// timer-driven releases insert jobs into the ready queue and trigger
// the scheduler; split tasks carry a per-core time budget and migrate
// to the next core when it is exhausted, returning to the home core's
// sleep queue when the tail part finishes.
//
// Every overhead the paper measures (Section 3) is injected at the
// point in the timeline where the kernel would pay it — rls, sch,
// cnt1/cnt2, the δ/θ queue operations (local or remote), and the
// cache-related preemption/migration delay — so a simulation run
// reproduces the Figure 1 anatomy and lets the property tests verify
// that analysis-admitted assignments never miss deadlines.
package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
	"repro/internal/trace"
)

// Policy selects the per-core scheduling discipline. It is an alias
// of task.Policy: assignments carry their policy, and Run derives the
// dispatching discipline from it.
type Policy = task.Policy

const (
	// FixedPriority is rate-monotonic fixed-priority scheduling with
	// boosted split parts — the paper's FP-TS runtime.
	FixedPriority = task.FixedPriority
	// EDF schedules by earliest absolute deadline; split tasks must
	// carry EDF-WM deadline windows (task.Split.Windows), and a
	// migrated part becomes eligible at its window start.
	EDF = task.EDF
)

// QueueBackend selects the data structure backing each core's ready
// queue. Both backends implement the same (key, FIFO) ordering, so a
// run is event-for-event identical across them; the choice exists for
// measurement and cross-validation (see Table 1).
type QueueBackend int

const (
	// BinomialHeap is the paper's ready-queue structure (default).
	BinomialHeap QueueBackend = iota
	// RedBlackTree backs the ready queue with the sleep queue's
	// red-black tree instead.
	RedBlackTree
)

// String names the backend.
func (b QueueBackend) String() string {
	switch b {
	case BinomialHeap:
		return "binomial-heap"
	case RedBlackTree:
		return "red-black-tree"
	default:
		return fmt.Sprintf("QueueBackend(%d)", int(b))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Model is the overhead model to inject; nil means overhead.Zero().
	Model *overhead.Model
	// Policy overrides the dispatching discipline. The zero value
	// defers to the assignment's own policy (stamped by the
	// partitioning algorithm), which is almost always what you want;
	// setting EDF forces EDF dispatching of a hand-built assignment.
	// Note the deliberate asymmetry: fixed-priority dispatching
	// cannot be forced onto an EDF-stamped assignment (EDF split
	// windows are meaningless under fixed priority, and FixedPriority
	// is indistinguishable from "unset").
	Policy Policy
	// ReadyQueue selects the ready-queue backend (default binomial
	// heap, the paper's structure).
	ReadyQueue QueueBackend
	// Horizon is the simulated duration; 0 means 10× the longest
	// period in the assignment.
	Horizon timeq.Time
	// Recorder receives the event stream; nil discards it.
	Recorder trace.Recorder
	// Offsets delays the first release of selected tasks; absent
	// tasks release at time 0 (the synchronous critical instant).
	Offsets map[task.ID]timeq.Time
	// ArrivalJitter makes tasks sporadic: each inter-arrival time is
	// Period plus a uniformly drawn delay in [0, ArrivalJitter].
	// Deadlines remain relative to the actual release. Zero (the
	// default) is strictly periodic — the analysis' critical instant.
	ArrivalJitter timeq.Time
	// Seed drives the sporadic arrival draw (ignored when
	// ArrivalJitter is zero).
	Seed int64
}

// Miss describes one deadline miss.
type Miss struct {
	Task     task.ID
	Release  timeq.Time
	Deadline timeq.Time
	// At is when the miss was detected (completion time, or the
	// overrunning release for aborts).
	At timeq.Time
	// Overrun marks a job that was still unfinished when the
	// simulation horizon ended (a completed-late job has it false).
	Overrun bool
}

// String renders the miss.
func (m Miss) String() string {
	k := "completed late"
	if m.Overrun {
		k = "unfinished at horizon"
	}
	return fmt.Sprintf("τ%d released %v deadline %v: %s at %v", m.Task, m.Release, m.Deadline, k, m.At)
}

// Stats aggregates a run.
type Stats struct {
	Releases    int
	Finishes    int
	Preemptions int
	// Migrations counts body-part budget exhaustions (one per
	// cross-core hop).
	Migrations int
	Misses     int
	// OverheadTime is the total kernel time per category: rls, sch,
	// cnt1, cnt2, rq-add, rq-del, sq-add, sq-del, cache.
	OverheadTime map[string]timeq.Time
	// ExecTime is the total job execution time across cores
	// (excluding overheads and cache reloads).
	ExecTime timeq.Time
	// PerCore breaks execution and overhead time down by core.
	PerCore []CoreStats
	// Horizon is the simulated duration.
	Horizon timeq.Time
}

// CoreStats is one core's time accounting.
type CoreStats struct {
	Exec     timeq.Time
	Overhead timeq.Time
}

// Utilization returns the core's busy fraction (execution plus
// overhead over the horizon).
func (c CoreStats) Utilization(horizon timeq.Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(c.Exec+c.Overhead) / float64(horizon)
}

// TotalOverhead sums OverheadTime.
func (s *Stats) TotalOverhead() timeq.Time {
	var t timeq.Time
	for _, v := range s.OverheadTime {
		t += v
	}
	return t
}

// OverheadRatio is total overhead time divided by total core time
// (cores × horizon).
func (s *Stats) OverheadRatio(numCores int) float64 {
	if s.Horizon == 0 || numCores == 0 {
		return 0
	}
	return float64(s.TotalOverhead()) / (float64(s.Horizon) * float64(numCores))
}

// Result is the outcome of a run.
type Result struct {
	Stats  Stats
	Misses []Miss
	// MaxResponse is the largest observed response time per task
	// (completion − release).
	MaxResponse map[task.ID]timeq.Time
	// Jobs counts completed jobs per task.
	Jobs map[task.ID]int
	// MaxTardiness is the largest lateness per task (completion −
	// deadline, only positive values recorded) — the soft real-time
	// view of an overloaded run. Empty when all deadlines were met.
	MaxTardiness map[task.ID]timeq.Time
}

// Schedulable reports whether the run completed without misses.
func (r *Result) Schedulable() bool { return len(r.Misses) == 0 }

// WorstTardiness returns the largest tardiness across tasks (zero
// for a clean run).
func (r *Result) WorstTardiness() timeq.Time {
	var w timeq.Time
	for _, t := range r.MaxTardiness {
		if t > w {
			w = t
		}
	}
	return w
}

// Run simulates the assignment for the configured horizon.
func Run(a *task.Assignment, cfg Config) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = overhead.Zero()
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = trace.Discard{}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		var maxT timeq.Time
		for _, t := range a.AllTasks() {
			maxT = timeq.Max(maxT, t.Period)
		}
		horizon = 10 * maxT
	}
	if horizon <= 0 {
		return nil, errors.New("sched: non-positive horizon")
	}
	// The effective policy is the assignment's own unless the config
	// explicitly forces EDF; the caller no longer has to restate what
	// the partitioning algorithm already decided.
	policy := cfg.Policy
	if policy == FixedPriority {
		policy = a.Policy
	}
	if policy == EDF {
		for _, sp := range a.Splits {
			if !sp.HasWindows() {
				return nil, fmt.Errorf("sched: EDF policy requires deadline windows on split %v", sp.Task)
			}
		}
	}
	if cfg.ArrivalJitter < 0 {
		return nil, errors.New("sched: negative arrival jitter")
	}
	e := newEngine(a, model, rec, horizon, cfg.Offsets, cfg.ReadyQueue)
	e.policy = policy
	if cfg.ArrivalJitter > 0 {
		e.jitter = cfg.ArrivalJitter
		e.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.result(), nil
}
