package sched

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
	"repro/internal/trace"
)

func ms(x int64) timeq.Time { return timeq.Time(x) * timeq.Millisecond }

func singleCore(tasks ...*task.Task) *task.Assignment {
	s := task.NewSet(tasks...)
	s.AssignRM()
	a := task.NewAssignment(1)
	for _, t := range s.Tasks {
		a.Place(t, 0)
	}
	return a
}

func TestSingleTaskPeriodic(t *testing.T) {
	a := singleCore(&task.Task{ID: 1, WCET: ms(2), Period: ms(10)})
	r, err := Run(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedulable() {
		t.Fatalf("misses: %v", r.Misses)
	}
	// Horizon defaults to 10 periods: 10 releases, all complete.
	if r.Stats.Releases != 10 || r.Stats.Finishes != 10 {
		t.Fatalf("releases=%d finishes=%d, want 10/10", r.Stats.Releases, r.Stats.Finishes)
	}
	if r.MaxResponse[1] != ms(2) {
		t.Fatalf("response %v, want 2ms", r.MaxResponse[1])
	}
	if r.Stats.Preemptions != 0 || r.Stats.Migrations != 0 {
		t.Fatal("phantom preemptions/migrations")
	}
	if r.Stats.ExecTime != 10*ms(2) {
		t.Fatalf("exec time %v", r.Stats.ExecTime)
	}
}

func TestTwoTasksPreemption(t *testing.T) {
	// τ1 (C=1,T=4) preempts τ2 (C=5,T=20) repeatedly. Response of τ2:
	// RTA gives R2 = 5 + ceil(R2/4)·1 → 7.
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(1), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(20)},
	)
	r, err := Run(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedulable() {
		t.Fatalf("misses: %v", r.Misses)
	}
	if r.MaxResponse[1] != ms(1) {
		t.Fatalf("R1 = %v", r.MaxResponse[1])
	}
	if r.MaxResponse[2] != ms(7) {
		t.Fatalf("R2 = %v, want 7ms", r.MaxResponse[2])
	}
	if r.Stats.Preemptions == 0 {
		t.Fatal("expected preemptions")
	}
}

func TestSimMatchesRTAOnTextbookSet(t *testing.T) {
	// The synchronous release is the critical instant on one core, so
	// the simulated max response must equal the RTA fixed point.
	tasks := []*task.Task{
		{ID: 1, WCET: ms(1), Period: ms(4)},
		{ID: 2, WCET: ms(2), Period: ms(6)},
		{ID: 3, WCET: ms(3), Period: ms(12)},
	}
	a := singleCore(tasks...)
	r, err := Run(a, Config{Horizon: ms(240)})
	if err != nil {
		t.Fatal(err)
	}
	want := map[task.ID]timeq.Time{1: ms(1), 2: ms(3), 3: ms(10)}
	for id, w := range want {
		if r.MaxResponse[id] != w {
			t.Errorf("R%d = %v, want %v", id, r.MaxResponse[id], w)
		}
	}
}

func TestOverloadedCoreMisses(t *testing.T) {
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(3), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(3), Period: ms(6)},
	)
	r, err := Run(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedulable() {
		t.Fatal("overloaded core reported schedulable")
	}
	// Under persistent overload jobs finish ever later: misses pile
	// up and the release grid lags the ideal count (τ1 alone would
	// release 15 times in 60ms).
	late := 0
	for _, m := range r.Misses {
		if !m.Overrun && m.At > m.Deadline {
			late++
		}
	}
	if late == 0 {
		t.Fatal("expected late completions under overload")
	}
	if r.Stats.Releases >= 15+10 {
		t.Fatalf("release grid should lag under overload, got %d releases", r.Stats.Releases)
	}
}

func TestSplitTaskMigrates(t *testing.T) {
	// τ3 split 5ms+3ms across two cores, with a normal task on each.
	t1 := &task.Task{ID: 1, WCET: ms(4), Period: ms(10)}
	t2 := &task.Task{ID: 2, WCET: ms(4), Period: ms(10)}
	t3 := &task.Task{ID: 3, WCET: ms(8), Period: ms(20)}
	s := task.NewSet(t1, t2, t3)
	s.AssignRM()
	a := task.NewAssignment(2)
	a.Place(t1, 0)
	a.Place(t2, 1)
	a.Splits = append(a.Splits, &task.Split{Task: t3, Parts: []task.Part{
		{Core: 0, Budget: ms(5)},
		{Core: 1, Budget: ms(3)},
	}})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	r, err := Run(a, Config{Horizon: ms(100), Recorder: buf})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedulable() {
		t.Fatalf("misses: %v", r.Misses)
	}
	// 5 jobs of τ3 in 100ms, one migration each.
	if r.Stats.Migrations != 5 {
		t.Fatalf("migrations = %d, want 5", r.Stats.Migrations)
	}
	// Split parts run at highest local priority with zero overhead:
	// body completes at 5ms, tail runs 5..8ms, so R3 = 8ms.
	if r.MaxResponse[3] != ms(8) {
		t.Fatalf("R3 = %v, want 8ms", r.MaxResponse[3])
	}
	// The migration must appear in the trace as out+in pairs.
	outs := buf.Filter(trace.MigrateOut)
	ins := buf.Filter(trace.MigrateIn)
	if len(outs) != 5 || len(ins) != 5 {
		t.Fatalf("trace migrations out=%d in=%d", len(outs), len(ins))
	}
	// Normal tasks see the split parts as interference: τ1's response
	// is 4+5=9ms on core 0.
	if r.MaxResponse[1] != ms(9) {
		t.Fatalf("R1 = %v, want 9ms", r.MaxResponse[1])
	}
}

func TestPaperOverheadsCharged(t *testing.T) {
	m := overhead.PaperModel()
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(1), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(20)},
	)
	buf := &trace.Buffer{}
	r, err := Run(a, Config{Model: m, Horizon: ms(200), Recorder: buf})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schedulable() {
		t.Fatalf("misses with paper overheads: %v", r.Misses)
	}
	ot := r.Stats.OverheadTime
	// Every release charges exactly rls once.
	if want := timeq.MulCount(m.Release, int64(r.Stats.Releases)); ot["rls"] != want {
		t.Errorf("rls total %v, want %v", ot["rls"], want)
	}
	for _, cat := range []string{"rls", "sch", "cnt1", "cnt2", "rq-add", "rq-del", "sq-add", "sq-del"} {
		if ot[cat] == 0 {
			t.Errorf("category %s never charged", cat)
		}
	}
	// Overhead must be a small fraction of core time for ms-scale
	// tasks (the paper's conclusion).
	if ratio := r.Stats.OverheadRatio(1); ratio > 0.05 {
		t.Errorf("overhead ratio %.3f implausibly high", ratio)
	}
	// Stats and trace must agree.
	byLabel := buf.OverheadByLabel()
	for cat, v := range ot {
		if byLabel[cat] != v {
			t.Errorf("trace/stats disagree on %s: %v vs %v", cat, byLabel[cat], v)
		}
	}
}

func TestCacheReloadChargedOnPreemption(t *testing.T) {
	m := overhead.PaperModel()
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(1), Period: ms(4), WSS: 1 << 20},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(20), WSS: 1 << 20},
	)
	r, err := Run(a, Config{Model: m, Horizon: ms(200)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.OverheadTime["cache"] == 0 {
		t.Fatal("no cache reload charged despite preemptions and 1MiB WSS")
	}
}

func TestOffsetsDelayFirstRelease(t *testing.T) {
	a := singleCore(&task.Task{ID: 1, WCET: ms(2), Period: ms(10)})
	r, err := Run(a, Config{
		Horizon: ms(100),
		Offsets: map[task.ID]timeq.Time{1: ms(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Releases at 5,15,...,95: 10 releases, but the last (95) cannot
	// finish by 100... it finishes at 97 < 100. All 10 complete.
	if r.Stats.Releases != 10 {
		t.Fatalf("releases = %d", r.Stats.Releases)
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 2.0, Seed: 3})
	s := g.Next()
	a, err := partition.TS.Partition(s, 4, overhead.PaperModel())
	if err != nil {
		t.Skip("set not admitted; generator drift")
	}
	run := func() *Result {
		r, err := Run(a, Config{Model: overhead.PaperModel(), Horizon: ms(500)})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Stats.Releases != r2.Stats.Releases ||
		r1.Stats.Preemptions != r2.Stats.Preemptions ||
		r1.Stats.Migrations != r2.Stats.Migrations ||
		r1.Stats.TotalOverhead() != r2.Stats.TotalOverhead() {
		t.Fatal("simulation is not deterministic")
	}
}

// The central validation property (DESIGN.md §7): an assignment
// admitted by the overhead-aware analysis never misses a deadline in
// a simulation with the same overhead model.
func TestAdmittedNeverMisses(t *testing.T) {
	models := map[string]*overhead.Model{
		"zero":  overhead.Zero(),
		"paper": overhead.PaperModel(),
	}
	algs := []partition.Algorithm{partition.TS, partition.FFD, partition.WFD, partition.SPA2}
	for name, model := range models {
		for _, alg := range algs {
			g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.2, Seed: 4242})
			for si, s := range g.Batch(8) {
				a, err := alg.Partition(s.Clone(), 4, model)
				if err != nil {
					continue
				}
				r, err := Run(a, Config{Model: model, Horizon: 3 * timeq.Second})
				if err != nil {
					t.Fatalf("%s/%s set %d: %v", alg.Name(), name, si, err)
				}
				if !r.Schedulable() {
					t.Errorf("%s/%s set %d: admitted but missed: %v (first of %d)",
						alg.Name(), name, si, r.Misses[0], len(r.Misses))
				}
			}
		}
	}
}

// Simulated response times never exceed the analysis bound.
func TestSimResponseBoundedByRTA(t *testing.T) {
	model := overhead.PaperModel()
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.0, Seed: 99})
	for si, s := range g.Batch(6) {
		a, err := partition.TS.Partition(s.Clone(), 4, model)
		if err != nil {
			continue
		}
		rts, ok := analysis.ResponseTimes(a, model)
		if !ok {
			t.Fatalf("set %d: admitted but analysis rejects", si)
		}
		// Collapse analysis entities to per-task chain bounds
		// (cumulative jitter + response of the final part).
		bound := map[task.ID]timeq.Time{}
		for e, r := range rts {
			if tot := e.Jitter + r; tot > bound[e.Task.ID] {
				bound[e.Task.ID] = tot
			}
		}
		r, err := Run(a, Config{Model: model, Horizon: 2 * timeq.Second})
		if err != nil {
			t.Fatal(err)
		}
		for id, simR := range r.MaxResponse {
			if simR > bound[id] {
				t.Errorf("set %d τ%d: simulated response %v exceeds analysis bound %v", si, id, simR, bound[id])
			}
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	tk := &task.Task{ID: 1, WCET: ms(1), Period: ms(4)}
	bad := task.NewAssignment(1)
	bad.Place(tk, 0)
	bad.Place(tk, 0) // duplicate
	if _, err := Run(bad, Config{}); err == nil {
		t.Fatal("invalid assignment accepted")
	}
	ok := task.NewAssignment(1)
	ok.Place(tk, 0)
	if _, err := Run(ok, Config{Horizon: -1}); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestMissStringAndStatsHelpers(t *testing.T) {
	m := Miss{Task: 3, Release: ms(10), Deadline: ms(20), At: ms(25)}
	if m.String() == "" {
		t.Fatal("empty miss string")
	}
	m.Overrun = true
	if m.String() == "" {
		t.Fatal("empty overrun string")
	}
	s := Stats{OverheadTime: map[string]timeq.Time{"sch": ms(1), "rls": ms(2)}, Horizon: ms(100)}
	if s.TotalOverhead() != ms(3) {
		t.Fatal("TotalOverhead wrong")
	}
	if s.OverheadRatio(1) != 0.03 {
		t.Fatalf("ratio %v", s.OverheadRatio(1))
	}
	if s.OverheadRatio(0) != 0 {
		t.Fatal("zero cores should give zero ratio")
	}
}

func TestTardinessTracking(t *testing.T) {
	// Overloaded core: tardiness recorded and positive.
	a := singleCore(
		&task.Task{ID: 1, WCET: ms(3), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(3), Period: ms(6)},
	)
	r, err := Run(a, Config{Horizon: ms(120)})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstTardiness() <= 0 {
		t.Fatal("no tardiness under overload")
	}
	// A clean run has zero tardiness.
	ok := singleCore(&task.Task{ID: 1, WCET: ms(1), Period: ms(10)})
	r2, err := Run(ok, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.WorstTardiness() != 0 || len(r2.MaxTardiness) != 0 {
		t.Fatal("phantom tardiness")
	}
}

// Sporadic arrivals (inter-arrival ≥ T) are never harder than the
// strictly periodic critical instant: admitted sets stay miss-free.
func TestSporadicArrivalsSound(t *testing.T) {
	model := overhead.PaperModel()
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.2, Seed: 2024})
	checked := 0
	for _, s := range g.Batch(5) {
		a, err := partition.TS.Partition(s.Clone(), 4, model)
		if err != nil {
			continue
		}
		checked++
		for _, seed := range []int64{1, 2, 3} {
			r, err := Run(a, Config{
				Model:         model,
				Horizon:       2 * timeq.Second,
				ArrivalJitter: 5 * timeq.Millisecond,
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Schedulable() {
				t.Fatalf("sporadic run missed: %v", r.Misses[0])
			}
		}
	}
	if checked == 0 {
		t.Fatal("nothing admitted")
	}
}

func TestSporadicJitterValidation(t *testing.T) {
	a := singleCore(&task.Task{ID: 1, WCET: ms(1), Period: ms(10)})
	if _, err := Run(a, Config{ArrivalJitter: -1}); err == nil {
		t.Fatal("negative jitter accepted")
	}
	// With jitter, fewer releases fit in the horizon than periodic.
	r, err := Run(a, Config{Horizon: ms(1000), ArrivalJitter: ms(10), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Releases >= 100 {
		t.Fatalf("jittered releases %d should be < 100", r.Stats.Releases)
	}
	if r.Stats.Releases < 50 {
		t.Fatalf("jittered releases %d implausibly few", r.Stats.Releases)
	}
}

// Per-core accounting sums to the totals.
func TestPerCoreStats(t *testing.T) {
	model := overhead.PaperModel()
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.0, Seed: 31337})
	a, err := partition.TS.Partition(g.Next(), 4, model)
	if err != nil {
		t.Skip("not admitted")
	}
	r, err := Run(a, Config{Model: model, Horizon: timeq.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats.PerCore) != 4 {
		t.Fatalf("per-core entries: %d", len(r.Stats.PerCore))
	}
	var exec, ovh timeq.Time
	for _, cs := range r.Stats.PerCore {
		exec += cs.Exec
		ovh += cs.Overhead
		if u := cs.Utilization(r.Stats.Horizon); u < 0 || u > 1 {
			t.Fatalf("core utilization %v out of range", u)
		}
	}
	if exec != r.Stats.ExecTime {
		t.Fatalf("per-core exec %v != total %v", exec, r.Stats.ExecTime)
	}
	if ovh != r.Stats.TotalOverhead() {
		t.Fatalf("per-core overhead %v != total %v", ovh, r.Stats.TotalOverhead())
	}
	if (CoreStats{}).Utilization(0) != 0 {
		t.Fatal("zero-horizon utilization")
	}
}

// Metamorphic invariant: with zero overheads, scaling every period
// and WCET by the same factor scales every response time by exactly
// that factor.
func TestScalingMetamorphic(t *testing.T) {
	base := []*task.Task{
		{ID: 1, WCET: ms(1), Period: ms(4)},
		{ID: 2, WCET: ms(2), Period: ms(6)},
		{ID: 3, WCET: ms(3), Period: ms(12)},
	}
	run := func(k timeq.Time) map[task.ID]timeq.Time {
		scaled := make([]*task.Task, len(base))
		for i, tk := range base {
			cp := *tk
			cp.WCET *= k
			cp.Period *= k
			scaled[i] = &cp
		}
		a := singleCore(scaled...)
		r, err := Run(a, Config{Horizon: k * ms(120)})
		if err != nil {
			t.Fatal(err)
		}
		return r.MaxResponse
	}
	r1 := run(1)
	r3 := run(3)
	for id, v := range r1 {
		if r3[id] != 3*v {
			t.Fatalf("τ%d: scaled response %v, want %v", id, r3[id], 3*v)
		}
	}
}
