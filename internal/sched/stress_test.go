package sched

import (
	"fmt"
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

func TestSoundnessAcrossAlgorithmsAndModels(t *testing.T) {
	models := map[string]*overhead.Model{"zero": overhead.Zero(), "paper": overhead.PaperModel(), "paper10x": overhead.PaperModel().Scale(10)}
	algs := []partition.Algorithm{partition.TS, partition.TSNoBoost, partition.FFD, partition.SPA1, partition.SPA2, &partition.SPA{Variant: 2, FillByBound: true}}
	total, admitted := 0, 0
	for name, model := range models {
		for _, n := range []int{4, 8, 16, 32} {
			for _, u := range []float64{2.0, 3.0, 3.5, 3.8} {
				g := taskgen.New(taskgen.Config{N: n, TotalUtilization: u, Seed: int64(n*1000) + int64(u*10)})
				for si, s := range g.Batch(5) {
					for _, alg := range algs {
						total++
						a, err := alg.Partition(s.Clone(), 4, model)
						if err != nil {
							continue
						}
						admitted++
						r, err := Run(a, Config{Model: model, Horizon: 3 * timeq.Second})
						if err != nil {
							t.Fatalf("%s/%s n=%d u=%.1f set %d: %v", alg.Name(), name, n, u, si, err)
						}
						if !r.Schedulable() {
							t.Errorf("UNSOUND %s/%s n=%d u=%.1f set %d: %v", alg.Name(), name, n, u, si, r.Misses[0])
						}
					}
				}
			}
		}
	}
	fmt.Printf("stress: %d/%d admitted+verified\n", admitted, total)
}
