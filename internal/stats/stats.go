// Package stats provides the small descriptive-statistics helpers the
// measurement and experiment harnesses report with.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes a Summary. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0–100) of a sorted sample
// using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion returns k/n, or 0 for n = 0.
func Proportion(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion with k successes in n trials — the error bars on
// acceptance-ratio plots.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959964 // 97.5th normal quantile
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
