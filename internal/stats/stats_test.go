package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty sample")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P99 != 7 {
		t.Fatalf("single sample %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 40 {
		t.Fatal("extremes")
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("median %v", got)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestProportion(t *testing.T) {
	if Proportion(1, 4) != 0.25 || Proportion(0, 0) != 0 {
		t.Fatal("proportion")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("interval [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval [%v,%v] too wide for n=100", lo, hi)
	}
	lo0, hi0 := WilsonInterval(0, 0)
	if lo0 != 0 || hi0 != 1 {
		t.Fatal("n=0 should be vacuous")
	}
	lo1, hi1 := WilsonInterval(100, 100)
	if hi1 != 1 || lo1 < 0.9 {
		t.Fatalf("k=n interval [%v,%v]", lo1, hi1)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		p := float64(pRaw % 101)
		v := Percentile(sorted, p)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickWilsonContainsPointEstimate(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := WilsonInterval(k, n)
		p := float64(k) / float64(n)
		return lo <= p+1e-9 && p-1e-9 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
