package task

import "repro/internal/timeq"

// HyperPeriod returns the least common multiple of the set's periods
// — the cycle after which a synchronous periodic schedule repeats.
// The second result is false when the LCM overflows the cap (randomly
// generated nanosecond periods are usually coprime, so an exact
// hyperperiod simulation is only meaningful for hand-built or
// harmonic sets).
func (s *Set) HyperPeriod(cap timeq.Time) (timeq.Time, bool) {
	if cap <= 0 {
		cap = timeq.Time(1) << 50 // ~13 days
	}
	l := timeq.Time(1)
	for _, t := range s.Tasks {
		l = lcm(l, t.Period)
		if l <= 0 || l > cap {
			return 0, false
		}
	}
	return l, true
}

func gcd(a, b timeq.Time) timeq.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b timeq.Time) timeq.Time {
	if a == 0 || b == 0 {
		return 0
	}
	g := gcd(a, b)
	q := a / g
	// Overflow-conscious multiply.
	if q > 0 && b > (1<<62)/q {
		return -1
	}
	return q * b
}
