package task

import "fmt"

// Policy is the per-core scheduling discipline an assignment is built
// for. It is attached to every Assignment by the partitioning
// algorithms so that admission analysis and the simulator agree on how
// the assignment is to be dispatched without the caller restating it.
//
// The zero value is FixedPriority, so hand-built assignments (tests,
// examples) keep their historical fixed-priority semantics.
type Policy int

const (
	// FixedPriority is rate-monotonic fixed-priority scheduling with
	// boosted split parts — the paper's FP-TS runtime.
	FixedPriority Policy = iota
	// EDF schedules by earliest absolute deadline; split tasks must
	// carry EDF-WM deadline windows (Split.Windows), and a migrated
	// part becomes eligible at its window start.
	EDF
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FixedPriority:
		return "fixed-priority"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}
