package task

import (
	"fmt"

	"repro/internal/timeq"
)

// splitPriorityBoost pushes split parts above every normal task on
// their host cores while preserving RM order among parts. A body part
// must drain its budget promptly — every tick it is delayed is a tick
// stolen from the downstream parts' slack — so the splitting scheme
// runs migratory parts at the highest local priorities. The analysis
// and the simulator must agree on this rule, which is why it lives
// here.
const splitPriorityBoost = 1 << 20

// SplitLocalPriority maps a split task's RM priority to the effective
// local priority its parts use on their host cores (smaller is
// higher; all split parts outrank all normal tasks, RM order among
// parts).
func SplitLocalPriority(rmPriority int) int { return rmPriority - splitPriorityBoost }

// Part is one per-core share of a split task: the job executes for
// Budget time units on Core, then migrates to the next Part's core
// (or finishes, for the tail part).
type Part struct {
	Core   int
	Budget timeq.Time
}

// Split describes a task divided among several cores (Section 2 of
// the paper). Parts are ordered: Parts[0] is the body subtask on the
// core that releases the job, Parts[len-1] is the tail subtask. When
// the tail finishes, the job returns to the sleep queue of Parts[0]'s
// core ("the core hosting the first subtask").
type Split struct {
	Task  *Task
	Parts []Part
	// Windows optionally assigns each part a relative deadline
	// window (EDF-WM-style splitting): part k's jobs execute in
	// [release + ΣWindows[<k], release + ΣWindows[≤k]] and carry the
	// window end as their EDF deadline. Empty for fixed-priority
	// splitting, where parts run boosted and chain by jitter.
	Windows []timeq.Time
	// NoBoost keeps the parts at the task's plain RM priority
	// instead of the boosted top-priority band — the ablation knob
	// for the design choice documented in DESIGN.md §6. Fixed
	// priority only; EDF ignores it.
	NoBoost bool
}

// LocalPriority returns the effective fixed-priority key of this
// split's parts on their host cores.
func (sp *Split) LocalPriority() int {
	if sp.NoBoost {
		return sp.Task.Priority
	}
	return SplitLocalPriority(sp.Task.Priority)
}

// HasWindows reports whether the split uses EDF deadline windows.
func (sp *Split) HasWindows() bool { return len(sp.Windows) > 0 }

// WindowStart returns the offset of part k's window from the job
// release (0 for fixed-priority splits, where parts run on arrival).
func (sp *Split) WindowStart(k int) timeq.Time {
	var off timeq.Time
	if sp.HasWindows() {
		for i := 0; i < k; i++ {
			off += sp.Windows[i]
		}
	}
	return off
}

// WindowDeadline returns the offset of part k's deadline from the job
// release: the window end for EDF splits, the task deadline otherwise.
func (sp *Split) WindowDeadline(k int) timeq.Time {
	if !sp.HasWindows() {
		return sp.Task.EffectiveDeadline()
	}
	return sp.WindowStart(k) + sp.Windows[k]
}

// Validate checks that the split is well-formed: at least two parts,
// positive budgets summing exactly to the WCET, and no two adjacent
// parts on the same core.
func (sp *Split) Validate() error {
	if sp.Task == nil {
		return fmt.Errorf("split: nil task")
	}
	if len(sp.Parts) < 2 {
		return fmt.Errorf("split %s: %d part(s); a split task needs ≥ 2", sp.Task.label(), len(sp.Parts))
	}
	var sum timeq.Time
	for i, p := range sp.Parts {
		if p.Budget <= 0 {
			return fmt.Errorf("split %s part %d: non-positive budget %v", sp.Task.label(), i, p.Budget)
		}
		if p.Core < 0 {
			return fmt.Errorf("split %s part %d: negative core", sp.Task.label(), i)
		}
		if i > 0 && sp.Parts[i-1].Core == p.Core {
			return fmt.Errorf("split %s: parts %d and %d on the same core %d", sp.Task.label(), i-1, i, p.Core)
		}
		sum += p.Budget
	}
	if sum != sp.Task.WCET {
		return fmt.Errorf("split %s: budgets sum to %v, WCET is %v", sp.Task.label(), sum, sp.Task.WCET)
	}
	if sp.HasWindows() {
		if len(sp.Windows) != len(sp.Parts) {
			return fmt.Errorf("split %s: %d windows for %d parts", sp.Task.label(), len(sp.Windows), len(sp.Parts))
		}
		var wsum timeq.Time
		for i, w := range sp.Windows {
			if w < sp.Parts[i].Budget {
				return fmt.Errorf("split %s window %d: %v shorter than budget %v", sp.Task.label(), i, w, sp.Parts[i].Budget)
			}
			wsum += w
		}
		if wsum > sp.Task.EffectiveDeadline() {
			return fmt.Errorf("split %s: windows sum to %v beyond deadline %v", sp.Task.label(), wsum, sp.Task.EffectiveDeadline())
		}
	}
	return nil
}

// Assignment is the output of a partitioning algorithm: which core
// each task runs on, and which tasks are split and how. It is the
// input both to the schedulability analysis and to the simulator.
type Assignment struct {
	NumCores int
	// Normal[c] lists the unsplit tasks assigned to core c.
	Normal [][]*Task
	// Splits lists the split tasks with their per-core budgets.
	Splits []*Split
	// Policy is the scheduling discipline the assignment was admitted
	// under. Partitioning algorithms stamp it; analysis and simulator
	// dispatch on it. The zero value is FixedPriority.
	Policy Policy
}

// NewAssignment returns an empty assignment over m cores.
func NewAssignment(m int) *Assignment {
	return &Assignment{NumCores: m, Normal: make([][]*Task, m)}
}

// Place assigns an unsplit task to core c.
func (a *Assignment) Place(t *Task, c int) {
	a.Normal[c] = append(a.Normal[c], t)
}

// Validate checks structural soundness: cores in range, every task
// appears exactly once (either unsplit on one core or as one split),
// split budgets conserved.
func (a *Assignment) Validate() error {
	if a.NumCores <= 0 {
		return fmt.Errorf("assignment: %d cores", a.NumCores)
	}
	if len(a.Normal) != a.NumCores {
		return fmt.Errorf("assignment: Normal has %d cores, NumCores is %d", len(a.Normal), a.NumCores)
	}
	// Duplicate detection stays allocation-free on the happy path: the
	// sweep validates thousands of assignments per second, so the seen
	// set lives on the stack for realistic sizes and the per-location
	// strings are only built once a duplicate is actually found.
	n := len(a.Splits)
	for _, ts := range a.Normal {
		n += len(ts)
	}
	var stack [64]ID
	var small []ID
	var seen map[ID]bool
	if n <= len(stack) {
		small = stack[:0]
	} else {
		seen = make(map[ID]bool, n)
	}
	// dup records id's location (core index, or -1 for split) and
	// errors if it was already recorded; the first location is
	// recovered by re-scanning only on the error path.
	dup := func(id ID, at int) error {
		if seen == nil {
			fresh := true
			for _, prev := range small {
				if prev == id {
					fresh = false
					break
				}
			}
			if fresh {
				small = append(small, id)
				return nil
			}
		} else if !seen[id] {
			seen[id] = true
			return nil
		}
		loc := func(at int) string {
			if at < 0 {
				return "split"
			}
			return fmt.Sprintf("core %d", at)
		}
		var t *Task
		prev := at
		for c := len(a.Normal) - 1; c >= 0; c-- {
			for _, u := range a.Normal[c] {
				if u.ID == id {
					t, prev = u, c
				}
			}
		}
		if t == nil {
			for _, sp := range a.Splits {
				if sp.Task.ID == id {
					t, prev = sp.Task, -1
					break
				}
			}
		}
		return fmt.Errorf("task %s assigned twice (%s and %s)", t.label(), loc(prev), loc(at))
	}
	for c, ts := range a.Normal {
		for _, t := range ts {
			if err := dup(t.ID, c); err != nil {
				return err
			}
		}
	}
	for _, sp := range a.Splits {
		if err := sp.Validate(); err != nil {
			return err
		}
		for _, p := range sp.Parts {
			if p.Core >= a.NumCores {
				return fmt.Errorf("split %s: core %d out of range (%d cores)", sp.Task.label(), p.Core, a.NumCores)
			}
		}
		if err := dup(sp.Task.ID, -1); err != nil {
			return err
		}
	}
	return nil
}

// SplitOf returns the Split for t, or nil if t is not split.
func (a *Assignment) SplitOf(t *Task) *Split {
	for _, sp := range a.Splits {
		if sp.Task == t {
			return sp
		}
	}
	return nil
}

// CoreUtilization returns the utilization contributed to core c by
// both unsplit tasks and split-task shares (Budget/T per part).
func (a *Assignment) CoreUtilization(c int) float64 {
	u := 0.0
	for _, t := range a.Normal[c] {
		u += t.Utilization()
	}
	for _, sp := range a.Splits {
		for _, p := range sp.Parts {
			if p.Core == c {
				u += float64(p.Budget) / float64(sp.Task.Period)
			}
		}
	}
	return u
}

// TaskCountOnCore returns the number of schedulable entities hosted
// on core c (unsplit tasks plus split parts). This is the N that
// bounds the core's queue sizes in the overhead model.
func (a *Assignment) TaskCountOnCore(c int) int {
	n := len(a.Normal[c])
	for _, sp := range a.Splits {
		for _, p := range sp.Parts {
			if p.Core == c {
				n++
			}
		}
	}
	return n
}

// MaxTasksPerCore returns max over cores of TaskCountOnCore.
func (a *Assignment) MaxTasksPerCore() int {
	m := 0
	for c := 0; c < a.NumCores; c++ {
		if n := a.TaskCountOnCore(c); n > m {
			m = n
		}
	}
	return m
}

// AllTasks returns every task in the assignment exactly once.
func (a *Assignment) AllTasks() []*Task {
	var out []*Task
	for _, ts := range a.Normal {
		out = append(out, ts...)
	}
	for _, sp := range a.Splits {
		out = append(out, sp.Task)
	}
	return out
}

// NumSplit returns the number of split tasks.
func (a *Assignment) NumSplit() int { return len(a.Splits) }

// String summarizes the assignment per core.
func (a *Assignment) String() string {
	s := fmt.Sprintf("assignment over %d cores, %d split task(s)\n", a.NumCores, len(a.Splits))
	for c := 0; c < a.NumCores; c++ {
		s += fmt.Sprintf("  core %d (U=%.3f):", c, a.CoreUtilization(c))
		for _, t := range a.Normal[c] {
			s += " " + t.label()
		}
		for _, sp := range a.Splits {
			for i, p := range sp.Parts {
				if p.Core == c {
					s += fmt.Sprintf(" %s/%d[%v]", sp.Task.label(), i, p.Budget)
				}
			}
		}
		s += "\n"
	}
	return s
}
