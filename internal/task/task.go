// Package task defines the sporadic task model of the paper: periodic
// real-time tasks with worst-case execution times and implicit
// deadlines, rate-monotonic priorities, and — the paper's subject —
// split tasks whose execution is divided into per-core budgets so a
// job migrates across cores as each budget is exhausted.
package task

import (
	"fmt"
	"sort"

	"repro/internal/timeq"
)

// ID identifies a task within a Set.
type ID int

// Task is one sporadic task. C (WCET), T (period / minimum
// inter-arrival time) and D (relative deadline) follow the standard
// notation. The paper evaluates implicit deadlines (D = T); the model
// supports constrained deadlines (D ≤ T) because the tail subtask of a
// split task effectively has one.
type Task struct {
	ID   ID
	Name string

	// WCET is the worst-case execution time C.
	WCET timeq.Time
	// Period is the minimum inter-arrival time T.
	Period timeq.Time
	// Deadline is the relative deadline D. Zero means implicit (D=T).
	Deadline timeq.Time

	// Priority is the fixed priority; smaller is higher. Assigned by
	// Set.AssignRM (rate-monotonic) before partitioning.
	Priority int

	// WSS is the task's working-set size in bytes, used by the cache
	// model to compute preemption/migration delays.
	WSS int64
}

// EffectiveDeadline returns D, or T when the deadline is implicit.
func (t *Task) EffectiveDeadline() timeq.Time {
	if t.Deadline == 0 {
		return t.Period
	}
	return t.Deadline
}

// Utilization returns C/T.
func (t *Task) Utilization() float64 {
	return float64(t.WCET) / float64(t.Period)
}

// String renders the task compactly, e.g. "τ3(C=2ms,T=10ms)".
func (t *Task) String() string {
	return fmt.Sprintf("%s(C=%v,T=%v)", t.label(), t.WCET, t.Period)
}

func (t *Task) label() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("τ%d", t.ID)
}

// Validate reports whether the task parameters are physically
// meaningful (0 < C ≤ D ≤ T).
func (t *Task) Validate() error {
	if t.WCET <= 0 {
		return fmt.Errorf("task %s: non-positive WCET %v", t.label(), t.WCET)
	}
	if t.Period <= 0 {
		return fmt.Errorf("task %s: non-positive period %v", t.label(), t.Period)
	}
	d := t.EffectiveDeadline()
	if d < t.WCET {
		return fmt.Errorf("task %s: deadline %v < WCET %v", t.label(), d, t.WCET)
	}
	if d > t.Period {
		return fmt.Errorf("task %s: deadline %v > period %v (only constrained deadlines supported)", t.label(), d, t.Period)
	}
	if t.WSS < 0 {
		return fmt.Errorf("task %s: negative WSS", t.label())
	}
	return nil
}

// Set is an ordered collection of tasks.
type Set struct {
	Tasks []*Task
}

// NewSet builds a Set, assigning sequential IDs to tasks that have
// none (ID 0 and no name).
func NewSet(tasks ...*Task) *Set {
	s := &Set{Tasks: tasks}
	for i, t := range s.Tasks {
		if t.ID == 0 {
			t.ID = ID(i + 1)
		}
	}
	return s
}

// Validate checks every task and that IDs are unique.
func (s *Set) Validate() error {
	for _, t := range s.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	// Duplicate-ID check. Task sets are small (the Section-4 grid uses
	// a dozen tasks), so the pairwise scan avoids allocating a set on
	// the hot sweep path; large sets fall back to a map.
	if len(s.Tasks) <= 64 {
		for i, t := range s.Tasks {
			for _, u := range s.Tasks[:i] {
				if u.ID == t.ID {
					return fmt.Errorf("duplicate task ID %d", t.ID)
				}
			}
		}
		return nil
	}
	seen := make(map[ID]bool, len(s.Tasks))
	for _, t := range s.Tasks {
		if seen[t.ID] {
			return fmt.Errorf("duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// TotalUtilization returns ΣC/T.
func (s *Set) TotalUtilization() float64 {
	u := 0.0
	for _, t := range s.Tasks {
		u += t.Utilization()
	}
	return u
}

// MaxUtilization returns the largest single-task utilization.
func (s *Set) MaxUtilization() float64 {
	u := 0.0
	for _, t := range s.Tasks {
		if tu := t.Utilization(); tu > u {
			u = tu
		}
	}
	return u
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.Tasks) }

// AssignRM assigns rate-monotonic priorities: the shorter the period,
// the higher the priority (smaller number). Ties are broken by ID so
// the assignment is deterministic. Priorities start at 1.
func (s *Set) AssignRM() {
	order := make([]*Task, len(s.Tasks))
	copy(order, s.Tasks)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Period != order[j].Period {
			return order[i].Period < order[j].Period
		}
		return order[i].ID < order[j].ID
	})
	for i, t := range order {
		t.Priority = i + 1
	}
}

// SortedByPriority returns the tasks ordered from highest priority
// (smallest Priority value) to lowest.
func (s *Set) SortedByPriority() []*Task {
	order := make([]*Task, len(s.Tasks))
	copy(order, s.Tasks)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Priority != order[j].Priority {
			return order[i].Priority < order[j].Priority
		}
		return order[i].ID < order[j].ID
	})
	return order
}

// SortedByUtilizationDesc returns the tasks ordered from largest to
// smallest utilization (the "decreasing" in FFD/WFD).
func (s *Set) SortedByUtilizationDesc() []*Task {
	order := make([]*Task, len(s.Tasks))
	copy(order, s.Tasks)
	sort.SliceStable(order, func(i, j int) bool {
		ui, uj := order[i].Utilization(), order[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return order[i].ID < order[j].ID
	})
	return order
}

// Clone deep-copies the set (tasks are copied, so priority assignment
// on the clone does not affect the original).
// CloneInto deep-copies s into dst's recycled slabs and returns dst,
// allocating only when dst (which may be nil) lacks capacity. It is
// the zero-garbage Clone the sweep engine uses to hand cached task
// sets to workers.
func (s *Set) CloneInto(dst *Set) *Set {
	if dst == nil {
		dst = &Set{}
	}
	old := dst.Tasks[:cap(dst.Tasks)]
	if cap(dst.Tasks) < len(s.Tasks) {
		dst.Tasks = make([]*Task, len(s.Tasks))
	} else {
		dst.Tasks = dst.Tasks[:len(s.Tasks)]
	}
	for i, t := range s.Tasks {
		if i < len(old) && old[i] != nil {
			dst.Tasks[i] = old[i]
		}
		if dst.Tasks[i] == nil {
			dst.Tasks[i] = new(Task)
		}
		*dst.Tasks[i] = *t
	}
	return dst
}

func (s *Set) Clone() *Set {
	out := &Set{Tasks: make([]*Task, len(s.Tasks))}
	for i, t := range s.Tasks {
		cp := *t
		out.Tasks[i] = &cp
	}
	return out
}
