package task

import (
	"strings"
	"testing"

	"repro/internal/timeq"
)

func ms(x int64) timeq.Time { return timeq.Time(x) * timeq.Millisecond }

func TestEffectiveDeadline(t *testing.T) {
	tk := &Task{WCET: ms(1), Period: ms(10)}
	if tk.EffectiveDeadline() != ms(10) {
		t.Fatal("implicit deadline should equal period")
	}
	tk.Deadline = ms(7)
	if tk.EffectiveDeadline() != ms(7) {
		t.Fatal("explicit deadline ignored")
	}
}

func TestUtilization(t *testing.T) {
	tk := &Task{WCET: ms(2), Period: ms(10)}
	if u := tk.Utilization(); u != 0.2 {
		t.Fatalf("U = %v, want 0.2", u)
	}
}

func TestValidate(t *testing.T) {
	good := &Task{ID: 1, WCET: ms(1), Period: ms(4)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	bad := []*Task{
		{ID: 1, WCET: 0, Period: ms(4)},
		{ID: 1, WCET: ms(1), Period: 0},
		{ID: 1, WCET: ms(5), Period: ms(4)},
		{ID: 1, WCET: ms(1), Period: ms(4), Deadline: ms(5)},
		{ID: 1, WCET: ms(2), Period: ms(4), Deadline: ms(1)},
		{ID: 1, WCET: ms(1), Period: ms(4), WSS: -1},
	}
	for i, tk := range bad {
		if err := tk.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestSetValidateDuplicateID(t *testing.T) {
	s := &Set{Tasks: []*Task{
		{ID: 1, WCET: ms(1), Period: ms(4)},
		{ID: 1, WCET: ms(1), Period: ms(5)},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestNewSetAssignsIDs(t *testing.T) {
	s := NewSet(
		&Task{WCET: ms(1), Period: ms(4)},
		&Task{WCET: ms(1), Period: ms(5)},
	)
	if s.Tasks[0].ID == 0 || s.Tasks[1].ID == 0 || s.Tasks[0].ID == s.Tasks[1].ID {
		t.Fatalf("IDs not assigned: %d, %d", s.Tasks[0].ID, s.Tasks[1].ID)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignRM(t *testing.T) {
	s := NewSet(
		&Task{ID: 1, WCET: ms(1), Period: ms(20)},
		&Task{ID: 2, WCET: ms(1), Period: ms(5)},
		&Task{ID: 3, WCET: ms(1), Period: ms(10)},
		&Task{ID: 4, WCET: ms(1), Period: ms(5)}, // tie with ID 2
	)
	s.AssignRM()
	get := func(id ID) *Task {
		for _, tk := range s.Tasks {
			if tk.ID == id {
				return tk
			}
		}
		t.Fatalf("task %d missing", id)
		return nil
	}
	if get(2).Priority != 1 {
		t.Errorf("shortest period, lowest ID should be priority 1, got %d", get(2).Priority)
	}
	if get(4).Priority != 2 {
		t.Errorf("tie broken by ID: want 2, got %d", get(4).Priority)
	}
	if get(3).Priority != 3 || get(1).Priority != 4 {
		t.Errorf("priorities: %d %d", get(3).Priority, get(1).Priority)
	}
}

func TestSortedByPriorityAndUtilization(t *testing.T) {
	s := NewSet(
		&Task{ID: 1, WCET: ms(8), Period: ms(20)}, // U=0.4
		&Task{ID: 2, WCET: ms(1), Period: ms(5)},  // U=0.2
		&Task{ID: 3, WCET: ms(6), Period: ms(10)}, // U=0.6
	)
	s.AssignRM()
	byP := s.SortedByPriority()
	if byP[0].ID != 2 || byP[1].ID != 3 || byP[2].ID != 1 {
		t.Errorf("priority order wrong: %v %v %v", byP[0].ID, byP[1].ID, byP[2].ID)
	}
	byU := s.SortedByUtilizationDesc()
	if byU[0].ID != 3 || byU[1].ID != 1 || byU[2].ID != 2 {
		t.Errorf("utilization order wrong: %v %v %v", byU[0].ID, byU[1].ID, byU[2].ID)
	}
}

func TestTotalAndMaxUtilization(t *testing.T) {
	s := NewSet(
		&Task{ID: 1, WCET: ms(2), Period: ms(10)},
		&Task{ID: 2, WCET: ms(3), Period: ms(10)},
	)
	if u := s.TotalUtilization(); u != 0.5 {
		t.Fatalf("total U = %v", u)
	}
	if u := s.MaxUtilization(); u != 0.3 {
		t.Fatalf("max U = %v", u)
	}
}

func TestClone(t *testing.T) {
	s := NewSet(&Task{ID: 1, WCET: ms(1), Period: ms(4)})
	c := s.Clone()
	c.Tasks[0].Priority = 99
	if s.Tasks[0].Priority == 99 {
		t.Fatal("Clone aliases tasks")
	}
}

func TestSplitValidate(t *testing.T) {
	tk := &Task{ID: 1, WCET: ms(6), Period: ms(20)}
	good := &Split{Task: tk, Parts: []Part{{Core: 0, Budget: ms(4)}, {Core: 1, Budget: ms(2)}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid split rejected: %v", err)
	}
	bad := []*Split{
		{Task: tk, Parts: []Part{{Core: 0, Budget: ms(6)}}},                                            // one part
		{Task: tk, Parts: []Part{{Core: 0, Budget: ms(4)}, {Core: 1, Budget: ms(3)}}},                  // sum ≠ C
		{Task: tk, Parts: []Part{{Core: 0, Budget: ms(4)}, {Core: 0, Budget: ms(2)}}},                  // same core adjacent
		{Task: tk, Parts: []Part{{Core: 0, Budget: ms(6)}, {Core: 1, Budget: 0}}},                      // zero budget
		{Task: tk, Parts: []Part{{Core: 0, Budget: ms(7)}, {Core: 1, Budget: timeq.Time(-1) * ms(1)}}}, // negative
		{Task: nil, Parts: []Part{{Core: 0, Budget: ms(4)}, {Core: 1, Budget: ms(2)}}},                 // nil task
		{Task: tk, Parts: []Part{{Core: -1, Budget: ms(4)}, {Core: 1, Budget: ms(2)}}},                 // negative core
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad split %d accepted", i)
		}
	}
}

func TestAssignmentValidateAndAccounting(t *testing.T) {
	t1 := &Task{ID: 1, WCET: ms(2), Period: ms(10)}
	t2 := &Task{ID: 2, WCET: ms(4), Period: ms(10)}
	t3 := &Task{ID: 3, WCET: ms(6), Period: ms(20)}
	a := NewAssignment(2)
	a.Place(t1, 0)
	a.Place(t2, 1)
	a.Splits = append(a.Splits, &Split{Task: t3, Parts: []Part{{Core: 0, Budget: ms(4)}, {Core: 1, Budget: ms(2)}}})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if u := a.CoreUtilization(0); u != 0.2+0.2 {
		t.Errorf("core 0 U = %v", u)
	}
	if u := a.CoreUtilization(1); u != 0.4+0.1 {
		t.Errorf("core 1 U = %v", u)
	}
	if n := a.TaskCountOnCore(0); n != 2 {
		t.Errorf("core 0 count = %d", n)
	}
	if a.MaxTasksPerCore() != 2 {
		t.Errorf("max per core = %d", a.MaxTasksPerCore())
	}
	if len(a.AllTasks()) != 3 {
		t.Errorf("AllTasks = %d", len(a.AllTasks()))
	}
	if a.SplitOf(t3) == nil || a.SplitOf(t1) != nil {
		t.Error("SplitOf wrong")
	}
	if !strings.Contains(a.String(), "core 0") {
		t.Error("String missing core line")
	}
}

func TestAssignmentRejectsDoubleAssignment(t *testing.T) {
	t1 := &Task{ID: 1, WCET: ms(2), Period: ms(10)}
	a := NewAssignment(2)
	a.Place(t1, 0)
	a.Place(t1, 1)
	if err := a.Validate(); err == nil {
		t.Fatal("double placement accepted")
	}

	b := NewAssignment(2)
	b.Place(t1, 0)
	b.Splits = append(b.Splits, &Split{Task: t1, Parts: []Part{{Core: 0, Budget: ms(1)}, {Core: 1, Budget: ms(1)}}})
	if err := b.Validate(); err == nil {
		t.Fatal("place+split accepted")
	}
}

func TestAssignmentRejectsCoreOutOfRange(t *testing.T) {
	t1 := &Task{ID: 1, WCET: ms(2), Period: ms(10)}
	a := NewAssignment(1)
	a.Splits = append(a.Splits, &Split{Task: t1, Parts: []Part{{Core: 0, Budget: ms(1)}, {Core: 5, Budget: ms(1)}}})
	if err := a.Validate(); err == nil {
		t.Fatal("core out of range accepted")
	}
}

func TestHyperPeriod(t *testing.T) {
	s := NewSet(
		&Task{ID: 1, WCET: ms(1), Period: ms(4)},
		&Task{ID: 2, WCET: ms(1), Period: ms(6)},
		&Task{ID: 3, WCET: ms(1), Period: ms(10)},
	)
	h, ok := s.HyperPeriod(0)
	if !ok || h != ms(60) {
		t.Fatalf("hyperperiod %v ok=%v, want 60ms", h, ok)
	}
	// Coprime nanosecond periods overflow the cap.
	big := NewSet(
		&Task{ID: 1, WCET: 1, Period: 1_000_003},
		&Task{ID: 2, WCET: 1, Period: 999_983},
		&Task{ID: 3, WCET: 1, Period: 1_000_033},
		&Task{ID: 4, WCET: 1, Period: 999_979},
		&Task{ID: 5, WCET: 1, Period: 1_000_037},
		&Task{ID: 6, WCET: 1, Period: 999_961},
		&Task{ID: 7, WCET: 1, Period: 1_000_039},
	)
	if _, ok := big.HyperPeriod(timeq.Time(1) << 40); ok {
		t.Fatal("coprime periods should overflow the cap")
	}
	one := NewSet(&Task{ID: 1, WCET: ms(1), Period: ms(7)})
	if h, ok := one.HyperPeriod(0); !ok || h != ms(7) {
		t.Fatalf("single-task hyperperiod %v", h)
	}
}
