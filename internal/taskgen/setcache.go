package taskgen

import (
	"sync"

	"repro/internal/task"
)

// SetCache memoizes the first draw of deterministic configurations so
// paired sweeps — the same grid analyzed under two overhead models,
// or re-run across benchmark iterations — generate each task set
// once. Seeding math/rand's lagged-Fibonacci source costs ~1.9k LCG
// steps per set, which the Section-4 profile shows is ~17% of a
// sweep; the second sweep of a pair serves every cell from the cache
// instead.
//
// The cache is safe for concurrent use by the sweep worker pool. It
// holds one private copy per distinct Config; callers receive deep
// copies into their own recycled slabs, so cached sets are never
// aliased by mutable state. Scope a SetCache to the paired runs that
// share it (it does not evict) — typically one per benchmark
// iteration or CLI invocation.
type SetCache struct {
	mu  sync.Mutex
	m   map[Config]*task.Set
	gen *Generator
}

// NewSetCache returns an empty cache.
func NewSetCache() *SetCache { return &SetCache{m: make(map[Config]*task.Set)} }

// FirstInto returns cfg's first draw — Generator(cfg).Next() —
// generating and memoizing it on first request, deep-copied into
// dst's recycled slabs (dst may be nil). Misses generate under the
// cache lock: a miss is once per distinct cell and generation is
// microseconds-scale, so contention stays negligible while every
// config is generated exactly once.
func (sc *SetCache) FirstInto(cfg Config, dst *task.Set) *task.Set {
	sc.mu.Lock()
	s, ok := sc.m[cfg]
	if !ok {
		if sc.gen == nil {
			sc.gen = New(cfg)
		} else {
			sc.gen.Reconfigure(cfg)
		}
		s = sc.gen.Next()
		sc.m[cfg] = s
	}
	sc.mu.Unlock()
	return s.CloneInto(dst)
}
