// Package taskgen generates random sporadic task sets for the
// empirical evaluation, following the methodology standard in the
// semi-partitioned scheduling literature (and used by Guan et al.,
// RTAS 2010, which the paper's Section 4 evaluation adopts):
//
//   - per-task utilizations drawn with UUniFast (Bini & Buttazzo),
//     or UUniFast-discard when individual utilizations must be ≤ 1;
//   - periods drawn log-uniformly from a configurable range;
//   - WCETs derived as C = U·T (rounded, clamped to ≥ 1 tick);
//   - working-set sizes drawn log-uniformly for the cache model.
//
// All generation is deterministic given the Config seed.
package taskgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/task"
	"repro/internal/timeq"
)

// PeriodDist selects the period distribution.
type PeriodDist int

const (
	// LogUniform draws periods log-uniformly from [PeriodMin, PeriodMax]
	// — the standard choice: each order of magnitude equally likely.
	LogUniform PeriodDist = iota
	// Uniform draws periods uniformly from [PeriodMin, PeriodMax].
	Uniform
	// Harmonic draws periods as PeriodMin · 2^k, k uniform, capped at
	// PeriodMax (models harmonic task sets common in control systems).
	Harmonic
	// Automotive draws periods from the distribution reported for
	// production engine-management software (Kramer, Ziegenbein &
	// Hamann, WATERS 2015): {1,2,5,10,20,50,100,200,1000} ms with
	// their published share weights. PeriodMin/PeriodMax are ignored.
	Automotive
)

// automotivePeriods and automotiveWeights encode the WATERS 2015
// benchmark period histogram (weights in per mille).
var (
	automotivePeriods = [...]timeq.Time{
		1 * timeq.Millisecond, 2 * timeq.Millisecond, 5 * timeq.Millisecond,
		10 * timeq.Millisecond, 20 * timeq.Millisecond, 50 * timeq.Millisecond,
		100 * timeq.Millisecond, 200 * timeq.Millisecond, 1000 * timeq.Millisecond,
	}
	automotiveWeights = [...]int{30, 20, 20, 250, 250, 30, 200, 150, 50}
)

// String names the distribution.
func (d PeriodDist) String() string {
	switch d {
	case LogUniform:
		return "log-uniform"
	case Uniform:
		return "uniform"
	case Harmonic:
		return "harmonic"
	case Automotive:
		return "automotive"
	default:
		return fmt.Sprintf("PeriodDist(%d)", int(d))
	}
}

// MarshalJSON serializes the distribution by name.
func (d PeriodDist) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON accepts the distribution by name (an empty string
// means the LogUniform default).
func (d *PeriodDist) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "", "log-uniform", "loguniform":
		*d = LogUniform
	case "uniform":
		*d = Uniform
	case "harmonic":
		*d = Harmonic
	case "automotive":
		*d = Automotive
	default:
		return fmt.Errorf("taskgen: unknown period distribution %q (log-uniform|uniform|harmonic|automotive)", name)
	}
	return nil
}

// Config parameterizes a generator. The JSON form (durations in
// nanoseconds, the period distribution by name) is accepted verbatim
// by the admitd batch endpoint for server-side set generation.
type Config struct {
	// N is the number of tasks per set.
	N int `json:"n"`
	// TotalUtilization is the target ΣU of each generated set.
	TotalUtilization float64 `json:"total_utilization"`
	// MaxTaskUtilization caps individual utilizations; sets with a
	// larger task are re-drawn (UUniFast-discard). 0 means 1.0.
	MaxTaskUtilization float64 `json:"max_task_utilization,omitempty"`
	// PeriodMin and PeriodMax bound the period range. Zero values
	// default to the conventional 10ms and 1000ms.
	PeriodMin timeq.Time `json:"period_min_ns,omitempty"`
	PeriodMax timeq.Time `json:"period_max_ns,omitempty"`
	// Periods selects the period distribution.
	Periods PeriodDist `json:"periods,omitempty"`
	// WSSMin and WSSMax bound the per-task working-set size
	// (log-uniform). Zero values default to 16KiB and 2MiB.
	WSSMin int64 `json:"wss_min,omitempty"`
	WSSMax int64 `json:"wss_max,omitempty"`
	// Seed makes generation deterministic.
	Seed int64 `json:"seed,omitempty"`
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxTaskUtilization == 0 {
		out.MaxTaskUtilization = 1.0
	}
	if out.PeriodMin == 0 {
		out.PeriodMin = 10 * timeq.Millisecond
	}
	if out.PeriodMax == 0 {
		out.PeriodMax = 1000 * timeq.Millisecond
	}
	if out.WSSMin == 0 {
		out.WSSMin = 16 << 10
	}
	if out.WSSMax == 0 {
		out.WSSMax = 2 << 20
	}
	return out
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	d := c.withDefaults()
	if d.N <= 0 {
		return fmt.Errorf("taskgen: N = %d", d.N)
	}
	if d.TotalUtilization <= 0 {
		return fmt.Errorf("taskgen: total utilization %v", d.TotalUtilization)
	}
	if d.MaxTaskUtilization <= 0 || d.MaxTaskUtilization > 1 {
		return fmt.Errorf("taskgen: max task utilization %v", d.MaxTaskUtilization)
	}
	if d.TotalUtilization > float64(d.N)*d.MaxTaskUtilization {
		return fmt.Errorf("taskgen: ΣU=%v impossible with N=%d tasks of U≤%v",
			d.TotalUtilization, d.N, d.MaxTaskUtilization)
	}
	if d.PeriodMin <= 0 || d.PeriodMax < d.PeriodMin {
		return fmt.Errorf("taskgen: period range [%v,%v]", d.PeriodMin, d.PeriodMax)
	}
	if d.WSSMin <= 0 || d.WSSMax < d.WSSMin {
		return fmt.Errorf("taskgen: WSS range [%d,%d]", d.WSSMin, d.WSSMax)
	}
	return nil
}

// Generator produces task sets from a Config.
type Generator struct {
	cfg Config
	rng *rand.Rand
	uu  []float64 // UUniFast scratch, reused across draws
}

// New returns a Generator; it panics if the config is invalid (a
// programming error in the experiment driver, not an input error).
func New(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := cfg.withDefaults()
	return &Generator{cfg: d, rng: rand.New(rand.NewSource(d.Seed))}
}

// Reconfigure rebinds the generator to a new config, reseeding the
// random stream in place. The generator behaves exactly as a fresh
// New(cfg) — same draws for the same seed — but keeps its scratch
// slabs, so sweep workers can serve every (utilization, set) point
// from one long-lived Generator. Panics on invalid config, like New.
func (g *Generator) Reconfigure(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g.cfg = cfg.withDefaults()
	g.rng.Seed(g.cfg.Seed)
}

// UUniFast draws n utilizations summing to u, uniformly over the
// simplex (Bini & Buttazzo, "Measuring the performance of
// schedulability tests").
func UUniFast(rng *rand.Rand, n int, u float64) []float64 {
	return uuniFastInto(rng, make([]float64, n), u)
}

// uuniFastInto is UUniFast writing into caller-owned scratch; it
// consumes the rng in exactly the order UUniFast does.
func uuniFastInto(rng *rand.Rand, out []float64, u float64) []float64 {
	n := len(out)
	sum := u
	for i := 1; i < n; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i))
		out[i-1] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// uuniFastDiscard redraws until every utilization is ≤ cap.
func (g *Generator) uuniFastDiscard() []float64 {
	if cap(g.uu) < g.cfg.N {
		g.uu = make([]float64, g.cfg.N)
	}
	for attempt := 0; ; attempt++ {
		us := uuniFastInto(g.rng, g.uu[:g.cfg.N], g.cfg.TotalUtilization)
		ok := true
		for _, u := range us {
			if u > g.cfg.MaxTaskUtilization || u <= 0 {
				ok = false
				break
			}
		}
		if ok {
			return us
		}
		if attempt > 100000 {
			panic("taskgen: UUniFast-discard did not converge; utilization target too tight")
		}
	}
}

// period draws one period from the configured distribution.
func (g *Generator) period() timeq.Time {
	lo, hi := float64(g.cfg.PeriodMin), float64(g.cfg.PeriodMax)
	switch g.cfg.Periods {
	case Uniform:
		return timeq.Time(lo + g.rng.Float64()*(hi-lo))
	case Harmonic:
		maxK := int(math.Floor(math.Log2(hi / lo)))
		k := g.rng.Intn(maxK + 1)
		return timeq.Time(lo * math.Pow(2, float64(k)))
	case Automotive:
		total := 0
		for _, w := range automotiveWeights {
			total += w
		}
		r := g.rng.Intn(total)
		for i, w := range automotiveWeights {
			if r < w {
				return automotivePeriods[i]
			}
			r -= w
		}
		return automotivePeriods[len(automotivePeriods)-1]
	default: // LogUniform
		l := math.Log(lo) + g.rng.Float64()*(math.Log(hi)-math.Log(lo))
		return timeq.Time(math.Round(math.Exp(l)))
	}
}

// wss draws one working-set size (log-uniform).
func (g *Generator) wss() int64 {
	lo, hi := float64(g.cfg.WSSMin), float64(g.cfg.WSSMax)
	if lo == hi {
		return g.cfg.WSSMin
	}
	l := math.Log(lo) + g.rng.Float64()*(math.Log(hi)-math.Log(lo))
	return int64(math.Round(math.Exp(l)))
}

// Next generates one task set with RM priorities assigned.
func (g *Generator) Next() *task.Set {
	return g.NextInto(nil)
}

// NextInto generates the next task set into s, reusing its task slab
// (the Tasks slice and the Task structs it points to) instead of
// allocating a fresh set. A nil s allocates one. The produced set is
// byte-identical to what Next would have returned at the same point
// of the random stream — NextInto consumes the rng in exactly Next's
// order — so pooled and unpooled generation are interchangeable.
//
// The caller must be done with the previous contents of s: the Task
// structs are overwritten in place, so any assignment still holding
// their pointers sees the new set's parameters.
func (g *Generator) NextInto(s *task.Set) *task.Set {
	if s == nil {
		s = &task.Set{}
	}
	us := g.uuniFastDiscard()
	if cap(s.Tasks) < g.cfg.N {
		s.Tasks = make([]*task.Task, g.cfg.N)
	}
	s.Tasks = s.Tasks[:g.cfg.N]
	for i, u := range us {
		t := g.period()
		c := timeq.Time(math.Round(u * float64(t)))
		if c < 1 {
			c = 1
		}
		if c > t {
			c = t
		}
		tk := s.Tasks[i]
		if tk == nil {
			tk = new(task.Task)
			s.Tasks[i] = tk
		}
		*tk = task.Task{
			ID:     task.ID(i + 1),
			WCET:   c,
			Period: t,
			WSS:    g.wss(),
		}
	}
	s.AssignRM()
	return s
}

// Batch generates k independent task sets.
func (g *Generator) Batch(k int) []*task.Set {
	out := make([]*task.Set, k)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
