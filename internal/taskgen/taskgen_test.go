package taskgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/task"
	"repro/internal/timeq"
)

func TestUUniFastSumsToTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 100} {
		for _, u := range []float64{0.5, 1.0, 3.2} {
			us := UUniFast(rng, n, u)
			if len(us) != n {
				t.Fatalf("got %d values", len(us))
			}
			sum := 0.0
			for _, x := range us {
				if x < 0 {
					t.Fatalf("negative utilization %v", x)
				}
				sum += x
			}
			if math.Abs(sum-u) > 1e-9 {
				t.Fatalf("sum %v, want %v", sum, u)
			}
		}
	}
}

func TestQuickUUniFastSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRaw uint8, uRaw uint16) bool {
		n := int(nRaw%50) + 1
		u := float64(uRaw%400)/100 + 0.01
		us := UUniFast(rng, n, u)
		sum := 0.0
		for _, x := range us {
			sum += x
		}
		return math.Abs(sum-u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{N: 12, TotalUtilization: 2.4, Seed: 42}
	a := New(cfg).Next()
	b := New(cfg).Next()
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Tasks {
		if *a.Tasks[i] != *b.Tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	// Different seed differs (overwhelmingly likely).
	cfg.Seed = 43
	c := New(cfg).Next()
	same := true
	for i := range a.Tasks {
		if *a.Tasks[i] != *c.Tasks[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestGeneratedSetsAreValid(t *testing.T) {
	g := New(Config{N: 20, TotalUtilization: 3.0, Seed: 5})
	for _, s := range g.Batch(50) {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Len() != 20 {
			t.Fatalf("set size %d", s.Len())
		}
		// Total utilization close to target (rounding of C introduces
		// tiny error at ns resolution).
		if math.Abs(s.TotalUtilization()-3.0) > 0.001 {
			t.Fatalf("ΣU = %v", s.TotalUtilization())
		}
		// RM priorities assigned and unique.
		seen := map[int]bool{}
		for _, tk := range s.Tasks {
			if tk.Priority == 0 || seen[tk.Priority] {
				t.Fatalf("bad priority %d", tk.Priority)
			}
			seen[tk.Priority] = true
		}
	}
}

func TestMaxTaskUtilizationRespected(t *testing.T) {
	g := New(Config{N: 10, TotalUtilization: 2.0, MaxTaskUtilization: 0.5, Seed: 9})
	for _, s := range g.Batch(30) {
		if u := s.MaxUtilization(); u > 0.5001 {
			t.Fatalf("task utilization %v exceeds cap", u)
		}
	}
}

func TestPeriodRanges(t *testing.T) {
	for _, dist := range []PeriodDist{LogUniform, Uniform, Harmonic} {
		g := New(Config{
			N: 30, TotalUtilization: 3.0, Seed: 11,
			PeriodMin: 10 * timeq.Millisecond,
			PeriodMax: 1000 * timeq.Millisecond,
			Periods:   dist,
		})
		s := g.Next()
		for _, tk := range s.Tasks {
			if tk.Period < 10*timeq.Millisecond || tk.Period > 1000*timeq.Millisecond {
				t.Fatalf("%v: period %v out of range", dist, tk.Period)
			}
			if dist == Harmonic {
				r := float64(tk.Period) / float64(10*timeq.Millisecond)
				if math.Abs(r-math.Round(r)) > 1e-9 || (math.Round(r) != 1 && int64(math.Round(r))&(int64(math.Round(r))-1) != 0) {
					t.Fatalf("harmonic period %v not power-of-2 multiple", tk.Period)
				}
			}
		}
	}
}

func TestWSSRange(t *testing.T) {
	g := New(Config{N: 30, TotalUtilization: 3.0, Seed: 13, WSSMin: 1 << 10, WSSMax: 1 << 20})
	s := g.Next()
	for _, tk := range s.Tasks {
		if tk.WSS < 1<<10 || tk.WSS > 1<<20 {
			t.Fatalf("WSS %d out of range", tk.WSS)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, TotalUtilization: 1},
		{N: 5, TotalUtilization: 0},
		{N: 5, TotalUtilization: 1, MaxTaskUtilization: 1.5},
		{N: 2, TotalUtilization: 3.0},                            // impossible: 2 tasks, ΣU=3
		{N: 5, TotalUtilization: 1, PeriodMin: 10, PeriodMax: 5}, // inverted periods
		{N: 5, TotalUtilization: 1, WSSMin: 10, WSSMax: 5},       // inverted WSS
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := Config{N: 8, TotalUtilization: 2.0}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{N: 0, TotalUtilization: 1})
}

func TestPeriodDistString(t *testing.T) {
	if LogUniform.String() != "log-uniform" || Uniform.String() != "uniform" || Harmonic.String() != "harmonic" {
		t.Error("dist names wrong")
	}
	if PeriodDist(9).String() == "" {
		t.Error("unknown dist empty")
	}
}

func TestAutomotivePeriods(t *testing.T) {
	g := New(Config{N: 40, TotalUtilization: 4.0, Seed: 21, Periods: Automotive})
	valid := map[timeq.Time]bool{}
	for _, p := range []int64{1, 2, 5, 10, 20, 50, 100, 200, 1000} {
		valid[timeq.Time(p)*timeq.Millisecond] = true
	}
	counts := map[timeq.Time]int{}
	for _, s := range g.Batch(20) {
		for _, tk := range s.Tasks {
			if !valid[tk.Period] {
				t.Fatalf("period %v not in the automotive histogram", tk.Period)
			}
			counts[tk.Period]++
		}
	}
	// The heavy bins (10ms, 20ms, 100ms) must dominate the light ones.
	if counts[10*timeq.Millisecond] < counts[1*timeq.Millisecond] {
		t.Error("10ms bin should outweigh 1ms bin")
	}
	if Automotive.String() != "automotive" {
		t.Error("name")
	}
}

func TestAutomotiveSetsSchedulable(t *testing.T) {
	// Smoke: automotive sets validate and carry sensible utilization.
	g := New(Config{N: 20, TotalUtilization: 2.0, Seed: 9, Periods: Automotive})
	s := g.Next()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNextIntoMatchesNext is the golden-seed determinism guard for
// pooled generation: a recycled set filled by NextInto must be
// byte-identical to the set a fresh generator's Next produces, across
// every period distribution and across many sets drawn from one
// recycled slab (stale-state bugs only show up from the second set
// on).
func TestNextIntoMatchesNext(t *testing.T) {
	dists := []PeriodDist{LogUniform, Uniform, Harmonic, Automotive}
	for _, dist := range dists {
		t.Run(dist.String(), func(t *testing.T) {
			cfg := Config{N: 12, TotalUtilization: 3.1, Periods: dist, Seed: 9000 + int64(dist)}
			fresh := New(cfg)
			pooled := New(cfg)
			var recycled *task.Set
			for k := 0; k < 10; k++ {
				want := fresh.Next()
				recycled = pooled.NextInto(recycled)
				if recycled.Len() != want.Len() {
					t.Fatalf("set %d: %d tasks, want %d", k, recycled.Len(), want.Len())
				}
				for i := range want.Tasks {
					if *recycled.Tasks[i] != *want.Tasks[i] {
						t.Fatalf("set %d task %d: %+v, want %+v", k, i, recycled.Tasks[i], want.Tasks[i])
					}
				}
			}
		})
	}
}

// TestReconfigureMatchesNew pins that one long-lived generator,
// Reconfigured per (seed, utilization) point, replays exactly what a
// fresh New at each point would draw.
func TestReconfigureMatchesNew(t *testing.T) {
	g := New(Config{N: 4, TotalUtilization: 1.0, Seed: 1})
	var set *task.Set
	for _, u := range []float64{1.5, 2.5, 3.5} {
		for seed := int64(100); seed < 103; seed++ {
			cfg := Config{N: 10, TotalUtilization: u, Periods: Harmonic, Seed: seed}
			g.Reconfigure(cfg)
			set = g.NextInto(set)
			want := New(cfg).Next()
			for i := range want.Tasks {
				if *set.Tasks[i] != *want.Tasks[i] {
					t.Fatalf("u=%v seed=%d task %d: %+v, want %+v", u, seed, i, set.Tasks[i], want.Tasks[i])
				}
			}
		}
	}
}
