package telemetry

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Level orders event severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel maps a flag value to a Level ("debug", "info", "warn",
// "error"); unknown strings default to info.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// EventLog is an optional structured NDJSON event stream: one JSON
// object per line, appended to a writer under a mutex. A nil
// *EventLog is a valid, fully disabled log — every method no-ops —
// so instrumented code carries no conditionals beyond the nil check
// the method call itself performs, and the hot path pays one
// predictable branch when tracing is off.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	// clock is stubbed by tests for deterministic timestamps.
	clock func() time.Time
}

// NewEventLog builds a log emitting events at or above min to w.
func NewEventLog(w io.Writer, min Level) *EventLog {
	return &EventLog{w: w, min: min, clock: time.Now}
}

// Enabled reports whether events at level lv would be written.
func (l *EventLog) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// entryPool recycles event builders; an Entry lives from Event() to
// Send() on one goroutine.
var entryPool = sync.Pool{New: func() any { return &Entry{buf: make([]byte, 0, 256)} }}

// Entry accumulates one event's fields. Obtain via EventLog.Event;
// finish with Send. All methods are nil-safe so disabled logs cost
// only the nil checks.
type Entry struct {
	l   *EventLog
	buf []byte
}

// Event starts an entry: {"ts":"…","level":"…","event":name,….
// Returns nil (a valid no-op entry) when the log is disabled or the
// level is below the threshold.
func (l *EventLog) Event(lv Level, name string) *Entry {
	if !l.Enabled(lv) {
		return nil
	}
	e := entryPool.Get().(*Entry)
	e.l = l
	e.buf = append(e.buf[:0], `{"ts":"`...)
	e.buf = l.clock().UTC().AppendFormat(e.buf, time.RFC3339Nano)
	e.buf = append(e.buf, `","level":"`...)
	e.buf = append(e.buf, lv.String()...)
	e.buf = append(e.buf, `","event":`...)
	e.buf = appendJSONString(e.buf, name)
	return e
}

// Str adds a string field.
func (e *Entry) Str(key, v string) *Entry {
	if e == nil {
		return nil
	}
	e.key(key)
	e.buf = appendJSONString(e.buf, v)
	return e
}

// Int adds an integer field.
func (e *Entry) Int(key string, v int64) *Entry {
	if e == nil {
		return nil
	}
	e.key(key)
	e.buf = strconv.AppendInt(e.buf, v, 10)
	return e
}

// Dur adds a duration field in integer microseconds (key should end
// in _us by convention).
func (e *Entry) Dur(key string, d time.Duration) *Entry {
	return e.Int(key, d.Microseconds())
}

// Bool adds a boolean field.
func (e *Entry) Bool(key string, v bool) *Entry {
	if e == nil {
		return nil
	}
	e.key(key)
	if v {
		e.buf = append(e.buf, "true"...)
	} else {
		e.buf = append(e.buf, "false"...)
	}
	return e
}

func (e *Entry) key(k string) {
	e.buf = append(e.buf, ',')
	e.buf = appendJSONString(e.buf, k)
	e.buf = append(e.buf, ':')
}

// Send terminates and writes the event line. The entry is recycled;
// it must not be used afterwards.
func (e *Entry) Send() {
	if e == nil {
		return
	}
	e.buf = append(e.buf, "}\n"...)
	l := e.l
	l.mu.Lock()
	_, _ = l.w.Write(e.buf)
	l.mu.Unlock()
	e.l = nil
	entryPool.Put(e)
}

// appendJSONString renders a JSON string literal with the minimal
// escaping NDJSON consumers need (quotes, backslashes, control
// bytes). Field keys and event names are ASCII by construction;
// values pass through UTF-8 untouched.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			b = append(b, `\"`...)
		case c == '\\':
			b = append(b, `\\`...)
		case c == '\n':
			b = append(b, `\n`...)
		case c == '\r':
			b = append(b, `\r`...)
		case c == '\t':
			b = append(b, `\t`...)
		case c < 0x20:
			b = append(b, `\u00`...)
			b = append(b, hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
