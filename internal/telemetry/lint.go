package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Lint checks a text-format exposition for structural validity and
// returns one message per problem (empty means clean). Enforced:
// every sample's family is declared with # HELP and # TYPE before
// its first sample; TYPE is counter, gauge or histogram; sample
// lines parse (name, optional {labels}, numeric value); histogram
// families carry _bucket/_sum/_count samples with le-monotone,
// cumulative bucket counts ending in +Inf; counter values are
// non-negative. It is a test/CI helper, not a full parser — scrapes
// are produced by WritePrometheus, linted here from the outside.
func Lint(expo []byte) []string {
	var probs []string
	help := map[string]bool{}
	typ := map[string]string{}
	sampled := map[string]bool{}
	histState := map[string]*histLint{}
	for ln, line := range strings.Split(string(expo), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !validMetricName(name) {
				probs = append(probs, fmt.Sprintf("line %d: malformed HELP", lineNo))
				continue
			}
			if sampled[name] {
				probs = append(probs, fmt.Sprintf("line %d: HELP for %s after its samples", lineNo, name))
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, t, found := strings.Cut(rest, " ")
			if !found || !validMetricName(name) {
				probs = append(probs, fmt.Sprintf("line %d: malformed TYPE", lineNo))
				continue
			}
			switch t {
			case "counter", "gauge", "histogram":
			default:
				probs = append(probs, fmt.Sprintf("line %d: %s has unknown type %q", lineNo, name, t))
			}
			typ[name] = t
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			probs = append(probs, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		fam := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, sfx); ok && typ[base] == "histogram" {
				fam, suffix = base, sfx
				break
			}
		}
		sampled[fam] = true
		if !help[fam] {
			probs = append(probs, fmt.Sprintf("line %d: %s has no # HELP", lineNo, fam))
		}
		t, ok := typ[fam]
		if !ok {
			probs = append(probs, fmt.Sprintf("line %d: %s has no # TYPE", lineNo, fam))
			continue
		}
		switch t {
		case "counter":
			if value < 0 {
				probs = append(probs, fmt.Sprintf("line %d: counter %s is negative", lineNo, fam))
			}
		case "histogram":
			if suffix == "" {
				probs = append(probs, fmt.Sprintf("line %d: histogram %s sample lacks _bucket/_sum/_count suffix", lineNo, fam))
				continue
			}
			key := fam + "{" + stripLE(labels) + "}"
			st := histState[key]
			if st == nil {
				st = &histLint{}
				histState[key] = st
			}
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					probs = append(probs, fmt.Sprintf("line %d: %s_bucket lacks le label", lineNo, fam))
					continue
				}
				if value < st.lastCum {
					probs = append(probs, fmt.Sprintf("line %d: %s buckets not cumulative", lineNo, fam))
				}
				st.lastCum = value
				st.sawInf = st.sawInf || le == "+Inf"
				if le == "+Inf" {
					st.infCum = value
				}
			case "_count":
				st.count = value
				st.sawCount = true
			case "_sum":
				st.sawSum = true
			}
		}
	}
	for key, st := range histState {
		if !st.sawInf {
			probs = append(probs, fmt.Sprintf("histogram %s has no +Inf bucket", key))
		}
		if !st.sawSum || !st.sawCount {
			probs = append(probs, fmt.Sprintf("histogram %s lacks _sum/_count", key))
		}
		if st.sawInf && st.sawCount && st.infCum != st.count {
			probs = append(probs, fmt.Sprintf("histogram %s: +Inf bucket %v != count %v", key, st.infCum, st.count))
		}
	}
	return probs
}

type histLint struct {
	lastCum, infCum, count float64
	sawInf, sawSum         bool
	sawCount               bool
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimPrefix(rest[j+1:], " ")
	} else {
		var found bool
		name, rest, found = strings.Cut(rest, " ")
		if !found {
			return "", "", 0, fmt.Errorf("no value in %q", line)
		}
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	for _, pair := range splitLabels(labels) {
		k, v, found := strings.Cut(pair, "=")
		if !found || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) || len(v) < 2 {
			return "", "", 0, fmt.Errorf("malformed label %q in %q", pair, line)
		}
		if k != "le" && !validLabelName(k) {
			return "", "", 0, fmt.Errorf("invalid label name %q in %q", k, line)
		}
	}
	rest = strings.TrimSpace(rest)
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil && rest != "+Inf" && rest != "-Inf" && rest != "NaN" {
		return "", "", 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return name, labels, v, nil
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// labelValue extracts one label's (unquoted) value.
func labelValue(labels, key string) (string, bool) {
	for _, pair := range splitLabels(labels) {
		if k, v, ok := strings.Cut(pair, "="); ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// stripLE removes the le pair so histogram lines group per series.
func stripLE(labels string) string {
	pairs := splitLabels(labels)
	kept := pairs[:0]
	for _, p := range pairs {
		if !strings.HasPrefix(p, "le=") {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ",")
}
