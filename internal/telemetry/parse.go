package telemetry

import (
	"math"
	"strconv"
	"strings"
)

// HistogramSnapshot is one histogram series decoded from Prometheus
// text exposition — enough to answer quantile questions at bucket
// resolution. Used by consumers that cross-check client-side
// measurements against a scraped /metrics payload (the load
// generator); it is a reader for the format WritePrometheus emits,
// not a general Prometheus parser.
type HistogramSnapshot struct {
	// UpperBounds holds each bucket's le value in exposition order,
	// ending with +Inf; CumCounts the matching cumulative counts.
	UpperBounds []float64
	CumCounts   []uint64
	Sum         float64
	Count       uint64
}

// Quantile returns the upper bound of the bucket containing quantile
// q (0 < q <= 1), NaN when the histogram is empty. Resolution is the
// bucket grid: the true value lies between the previous bound and the
// returned one.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.UpperBounds) == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	for i, c := range h.CumCounts {
		if c >= rank {
			return h.UpperBounds[i]
		}
	}
	return h.UpperBounds[len(h.UpperBounds)-1]
}

// ExtractHistogram decodes the histogram series of family whose
// label set contains labelMatch (e.g. `path="read"`; empty matches
// any series) from Prometheus text exposition. Returns nil when the
// family or series is absent or malformed.
func ExtractHistogram(expo []byte, family, labelMatch string) *HistogramSnapshot {
	var h HistogramSnapshot
	seen := false
	for _, line := range strings.Split(string(expo), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name, labels, value, ok := splitExpoLine(line)
		if !ok || !strings.HasPrefix(name, family) {
			continue
		}
		suffix := name[len(family):]
		if labelMatch != "" && !strings.Contains(labels, labelMatch) {
			continue
		}
		switch suffix {
		case "_bucket":
			le, okLE := labelValue(labels, "le")
			if !okLE {
				return nil
			}
			var ub float64
			if le == "+Inf" {
				ub = math.Inf(1)
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil
				}
				ub = f
			}
			c, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil
			}
			h.UpperBounds = append(h.UpperBounds, ub)
			h.CumCounts = append(h.CumCounts, c)
			seen = true
		case "_sum":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil
			}
			h.Sum = f
		case "_count":
			c, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil
			}
			h.Count = c
		}
	}
	if !seen {
		return nil
	}
	return &h
}

// splitExpoLine splits one sample line into name, raw label body
// (without braces) and value text.
func splitExpoLine(line string) (name, labels, value string, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", "", false
	}
	left, value := line[:sp], line[sp+1:]
	if i := strings.IndexByte(left, '{'); i >= 0 {
		if !strings.HasSuffix(left, "}") {
			return "", "", "", false
		}
		return left[:i], left[i+1 : len(left)-1], value, true
	}
	return left, "", value, true
}
