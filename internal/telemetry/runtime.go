package telemetry

import (
	"runtime"
	"sync"
)

// RegisterRuntime wires Go runtime observability into the registry:
// goroutine count, heap, and GC activity. MemStats is refreshed once
// per scrape (a single OnScrape hook), so the series within one
// exposition are mutually consistent; ReadMemStats stops the world
// for microseconds, which a pull-based scraper amortizes to nothing.
func RegisterRuntime(r *Registry) {
	var (
		mu sync.Mutex
		ms runtime.MemStats
	)
	r.OnScrape(func() {
		mu.Lock()
		runtime.ReadMemStats(&ms)
		mu.Unlock()
	})
	stat := func(f func() float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f()
		}
	}
	r.NewGaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.NewGaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		stat(func() float64 { return float64(ms.HeapAlloc) }))
	r.NewGaugeFunc("go_heap_objects",
		"Number of allocated heap objects.",
		stat(func() float64 { return float64(ms.HeapObjects) }))
	r.NewGaugeFunc("go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.",
		stat(func() float64 { return float64(ms.HeapSys) }))
	r.NewGaugeFunc("go_next_gc_bytes",
		"Heap size target of the next GC cycle.",
		stat(func() float64 { return float64(ms.NextGC) }))
	r.NewCounterFunc("go_gc_cycles_total",
		"Completed GC cycles since process start.",
		stat(func() float64 { return float64(ms.NumGC) }))
	r.NewCounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		stat(func() float64 { return float64(ms.PauseTotalNs) / 1e9 }))
}
