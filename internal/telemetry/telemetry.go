// Package telemetry is the daemon's in-process instrumentation
// plane: lock-free, allocation-free counters, gauges and log-bucketed
// histograms, merged only at scrape time into a hand-rolled
// Prometheus text-format exposition (no client_golang dependency —
// the writer is append-based over pooled buffers, in the same ethos
// as api/fast.go).
//
// The memory model mirrors the repo's RCU discipline: the hot path
// only ever performs independent atomic adds on cache-line-padded
// shards (writers never share a line), and the scrape path folds the
// shards into totals with plain atomic loads. There is no locking on
// either side; a scrape concurrent with updates sees a value at
// least as fresh as every update that completed before the scrape
// began — the same monotone-staleness contract the snapshot read
// path gives.
//
// Registration (NewCounter, NewGauge, …) is startup-time and may
// allocate, validate and panic; everything on the update path
// (Add, Inc, Observe) is wait-free and allocation-free.
package telemetry

import (
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// shardCount stripes every counter and histogram. Power of two, so
// the shard pick is a mask; 16 covers typical GOMAXPROCS without
// bloating the fixed arrays.
const shardCount = 16

// shardIndex picks a stripe for the calling goroutine. Go offers no
// portable per-P hint without runtime internals, so we fingerprint
// the goroutine by its stack: the address of a local variable.
// Stacks are allocated in distinct spans ≥2KiB apart, so discarding
// the low 10 bits spreads goroutines across stripes; one goroutine
// maps to a stable stripe (modulo stack moves, which only re-home
// its updates — never lose them). The unsafe.Pointer→uintptr
// conversion never escapes b.
func shardIndex() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (shardCount - 1))
}

// counterShard is one stripe, padded to a cache line so concurrent
// writers on different stripes never false-share.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, per-goroutine-sharded
// counter. The zero value is NOT usable — obtain counters from a
// Registry so they carry exposition metadata.
type Counter struct {
	shards [shardCount]counterShard
}

// Add folds n (n ≥ 0) into the calling goroutine's stripe.
func (c *Counter) Add(n int64) { c.shards[shardIndex()].v.Add(n) }

// Inc is Add(1).
func (c *Counter) Inc() { c.shards[shardIndex()].v.Add(1) }

// Value folds the stripes. Scrape-path only; O(shardCount).
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value (single atomic — gauges
// are set rarely or track small in-flight populations, where a
// shared line is the correct trade).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc / Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Unit selects how a histogram's observed integers are exposed.
type Unit int

const (
	// UnitCount exposes raw observed values (drain sizes,
	// iteration counts): le bounds are integers.
	UnitCount Unit = iota
	// UnitSeconds means observations are nanoseconds, exposed as
	// seconds (Prometheus base-unit convention): le bounds and the
	// _sum series are scaled by 1e-9.
	UnitSeconds
)

// histMaxBuckets bounds the fixed per-shard bucket array: shifts
// 0..histMaxShift inclusive, plus one overflow (+Inf) bucket.
const (
	histMaxShift   = 38
	histMaxBuckets = histMaxShift + 2
)

// histShard is one stripe of a histogram: bucket counts plus exact
// sum and count. Arrays are fixed-size so the whole histogram is a
// flat allocation; adjacent shards are naturally line-separated by
// the array length.
type histShard struct {
	buckets [histMaxBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Histogram is a log₂-bucketed distribution: bucket i (of the
// configured [minShift, maxShift] range) counts observations
// v ≤ 2^(minShift+i), with one +Inf overflow bucket. Observing is
// three independent atomic adds on the caller's stripe; merging
// happens only at scrape. The zero value is not usable — obtain
// histograms from a Registry.
type Histogram struct {
	minShift, maxShift int
	unit               Unit
	shards             [shardCount]histShard
}

// bucketFor maps an observed value to its bucket index (0-based
// within the configured range; last index is the overflow bucket).
func (h *Histogram) bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	// smallest shift s with v <= 2^s is bits.Len64(v-1)
	s := bits.Len64(uint64(v - 1))
	if s < h.minShift {
		return 0
	}
	if s > h.maxShift {
		return h.maxShift - h.minShift + 1 // +Inf
	}
	return s - h.minShift
}

// Observe records one duration (UnitSeconds histograms observe
// nanoseconds).
func (h *Histogram) Observe(d time.Duration) { h.ObserveInt(int64(d)) }

// ObserveInt records one observation.
func (h *Histogram) ObserveInt(v int64) {
	sh := &h.shards[shardIndex()]
	sh.buckets[h.bucketFor(v)].Add(1)
	sh.sum.Add(v)
	sh.count.Add(1)
}

// ObserveGroup records count observations totalling sum, bucketed at
// their integer mean: the exposed _sum and _count stay exact while
// bucket resolution degrades to the group grain. Used where the
// producer only hands out aggregates (e.g. fixed-point iterations
// per probe).
func (h *Histogram) ObserveGroup(sum, count int64) {
	if count <= 0 {
		return
	}
	sh := &h.shards[shardIndex()]
	sh.buckets[h.bucketFor(sum/count)].Add(count)
	sh.sum.Add(sum)
	sh.count.Add(count)
}

// snapshot folds the stripes into cumulative bucket counts (le ≤
// 2^shift per configured bucket, then +Inf), plus exact sum and
// count. Scrape-path only.
func (h *Histogram) snapshot(cum []int64) (sum, count int64, n int) {
	n = h.maxShift - h.minShift + 2 // configured buckets + overflow
	for i := 0; i < n; i++ {
		cum[i] = 0
	}
	for s := range h.shards {
		sh := &h.shards[s]
		for i := 0; i < n; i++ {
			cum[i] += sh.buckets[i].Load()
		}
		sum += sh.sum.Load()
		count += sh.count.Load()
	}
	for i := 1; i < n; i++ {
		cum[i] += cum[i-1]
	}
	return sum, count, n
}

// Quantile estimates quantile q (0..1) from the bucketed counts,
// returning the upper bound of the bucket holding it (the resolution
// the log₂ buckets give). Scrape-path / cross-check helper.
func (h *Histogram) Quantile(q float64) int64 {
	var cum [histMaxBuckets]int64
	_, count, n := h.snapshot(cum[:])
	if count == 0 {
		return 0
	}
	target := int64(q * float64(count))
	if target >= count {
		target = count - 1
	}
	for i := 0; i < n; i++ {
		if cum[i] > target {
			if h.minShift+i > h.maxShift {
				return int64(1) << h.maxShift // overflow bucket: clamp
			}
			return int64(1) << (h.minShift + i)
		}
	}
	return int64(1) << h.maxShift
}

// --- registry and exposition -----------------------------------------

// Label is one static label pair attached to a series at
// registration. Values are escaped at registration time; the update
// path never touches labels.
type Label struct{ Key, Value string }

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

// series is one exposition line (or histogram line group): a
// pre-rendered label string plus the live value source.
type series struct {
	labels string // `{k="v",…}` or ""
	kind   seriesKind
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

// family is one metric name: HELP/TYPE plus its series.
type family struct {
	name, help string
	typ        string // "counter" | "gauge" | "histogram"
	series     []series
}

// Registry owns a set of metric families and renders them. All
// registration methods are startup-time: they lock, validate and
// panic on misuse (mismatched type/help for an existing name,
// invalid metric names). Scraping locks only the family list (scrape
// vs. late registration), never the update path.
type Registry struct {
	mu         sync.Mutex
	fams       []*family
	onScrape   []func()
	scratchBuf sync.Pool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

func (r *Registry) familyLocked(name, help, typ string) *family {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, f := range r.fams {
		if f.name == name {
			if f.typ != typ || f.help != help {
				panic("telemetry: conflicting re-registration of " + name)
			}
			return f
		}
	}
	f := &family{name: name, help: help, typ: typ}
	r.fams = append(r.fams, f)
	return f
}

// NewCounter registers (or extends) the counter family name with one
// series carrying the given static labels and returns its handle.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	c := &Counter{}
	f.series = append(f.series, series{labels: renderLabels(labels), kind: kindCounter, c: c})
	return c
}

// NewGauge registers a settable gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	g := &Gauge{}
	f.series = append(f.series, series{labels: renderLabels(labels), kind: kindGauge, g: g})
	return g
}

// NewGaugeFunc registers a gauge series whose value is computed at
// scrape time (occupancy, runtime stats).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	f.series = append(f.series, series{labels: renderLabels(labels), kind: kindGaugeFunc, f: fn})
}

// NewCounterFunc registers a counter series backed by a scrape-time
// callback — for monotone totals owned elsewhere (GC pause totals,
// store eviction counts).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	f.series = append(f.series, series{labels: renderLabels(labels), kind: kindCounterFunc, f: fn})
}

// NewHistogram registers a log₂-bucketed histogram series whose
// buckets span 2^minShift … 2^maxShift in the observed unit.
func (r *Registry) NewHistogram(name, help string, unit Unit, minShift, maxShift int, labels ...Label) *Histogram {
	if minShift < 0 || maxShift > histMaxShift || minShift > maxShift {
		panic("telemetry: histogram shift range out of bounds for " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	h := &Histogram{minShift: minShift, maxShift: maxShift, unit: unit}
	f.series = append(f.series, series{labels: renderLabels(labels), kind: kindHistogram, h: h})
	return h
}

// OnScrape registers a hook run at the start of every exposition
// (before any value is read) — collectors that refresh gauges from
// snapshots (runtime.ReadMemStats, store occupancy) hang here.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// WritePrometheus appends the full text-format exposition
// (version 0.0.4) to buf and returns it. Families render in
// registration order — deterministic, so tests can pin the layout.
func (r *Registry) WritePrometheus(buf []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	var cum [histMaxBuckets]int64
	for _, f := range r.fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for i := range f.series {
			s := &f.series[i]
			switch s.kind {
			case kindCounter:
				buf = append(buf, f.name...)
				buf = append(buf, s.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, s.c.Value(), 10)
				buf = append(buf, '\n')
			case kindGauge:
				buf = append(buf, f.name...)
				buf = append(buf, s.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, s.g.Value(), 10)
				buf = append(buf, '\n')
			case kindGaugeFunc, kindCounterFunc:
				buf = append(buf, f.name...)
				buf = append(buf, s.labels...)
				buf = append(buf, ' ')
				buf = appendFloat(buf, s.f())
				buf = append(buf, '\n')
			case kindHistogram:
				buf = s.appendHistogram(buf, f.name, cum[:])
			}
		}
	}
	return buf
}

// appendHistogram renders one histogram series: cumulative
// _bucket{le=…} lines, then _sum and _count.
func (s *series) appendHistogram(buf []byte, name string, cum []int64) []byte {
	h := s.h
	sum, count, n := h.snapshot(cum)
	for i := 0; i < n; i++ {
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = appendLabelsWithLE(buf, s.labels, h, i, n)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, cum[i], 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, s.labels...)
	buf = append(buf, ' ')
	if h.unit == UnitSeconds {
		buf = appendFloat(buf, float64(sum)/1e9)
	} else {
		buf = strconv.AppendInt(buf, sum, 10)
	}
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, s.labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, count, 10)
	buf = append(buf, '\n')
	return buf
}

// appendLabelsWithLE splices le="…" into the series' pre-rendered
// label string (bucket i of n; the last bucket is +Inf).
func appendLabelsWithLE(buf []byte, labels string, h *Histogram, i, n int) []byte {
	buf = append(buf, '{')
	if labels != "" {
		buf = append(buf, labels[1:len(labels)-1]...) // strip { }
		buf = append(buf, ',')
	}
	buf = append(buf, `le="`...)
	if i == n-1 {
		buf = append(buf, "+Inf"...)
	} else {
		bound := int64(1) << (h.minShift + i)
		if h.unit == UnitSeconds {
			buf = appendFloat(buf, float64(bound)/1e9)
		} else {
			buf = strconv.AppendInt(buf, bound, 10)
		}
	}
	buf = append(buf, `"}`...)
	return buf
}

// appendFloat renders a float the way Prometheus parsers expect:
// shortest round-trip representation.
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// ServeHTTP renders the exposition over a pooled buffer —
// GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	bp, _ := r.scratchBuf.Get().(*[]byte)
	if bp == nil {
		b := make([]byte, 0, 16<<10)
		bp = &b
	}
	buf := r.WritePrometheus((*bp)[:0])
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
	*bp = buf[:0]
	r.scratchBuf.Put(bp)
}

// renderLabels pre-bakes `{k="v",…}` at registration time.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	b := []byte{'{'}
	for i, l := range labels {
		if !validLabelName(l.Key) {
			panic("telemetry: invalid label name " + strconv.Quote(l.Key))
		}
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, `="`...)
		b = appendEscapedLabelValue(b, l.Value)
		b = append(b, '"')
	}
	return string(append(b, '}'))
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// appendEscapedLabelValue escapes per the text format: backslash,
// double-quote and newline.
func appendEscapedLabelValue(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, c)
		}
	}
	return b
}

// appendEscapedHelp escapes HELP text: backslash and newline.
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, c)
		}
	}
	return b
}
