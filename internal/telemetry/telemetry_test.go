package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardedSum(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_ops_total", "ops")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1005 {
		t.Fatalf("counter = %d, want %d", got, 8*1005)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_lat_seconds", "lat", UnitSeconds, 8, 20)
	// 256ns lands in the first bucket (le=2^8), 257ns in the second.
	h.ObserveInt(256)
	h.ObserveInt(257)
	h.ObserveInt(1 << 30) // beyond maxShift 20 → +Inf
	h.ObserveInt(0)       // clamps into the first bucket
	var cum [histMaxBuckets]int64
	sum, count, n := h.snapshot(cum[:])
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if want := int64(256 + 257 + 1<<30); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if cum[0] != 2 { // 256 and 0
		t.Fatalf("first bucket cum = %d, want 2", cum[0])
	}
	if cum[1] != 3 {
		t.Fatalf("second bucket cum = %d, want 3", cum[1])
	}
	if cum[n-1] != 4 {
		t.Fatalf("+Inf cum = %d, want 4", cum[n-1])
	}
	if cum[n-2] != 3 {
		t.Fatalf("last finite cum = %d, want 3", cum[n-2])
	}
}

func TestHistogramObserveGroup(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_iters", "iters", UnitCount, 0, 10)
	h.ObserveGroup(12, 3) // three solves, 12 iterations, mean 4
	var cum [histMaxBuckets]int64
	sum, count, _ := h.snapshot(cum[:])
	if sum != 12 || count != 3 {
		t.Fatalf("sum/count = %d/%d, want 12/3", sum, count)
	}
	// mean 4 → le=4 is shift 2.
	if cum[2]-cum[1] != 3 {
		t.Fatalf("mean bucket delta = %d, want 3", cum[2]-cum[1])
	}
	h.ObserveGroup(5, 0) // no solves: must be a no-op
	if _, count, _ = h.snapshot(cum[:]); count != 3 {
		t.Fatalf("count after empty group = %d, want 3", count)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q", "q", UnitCount, 0, 16)
	for i := 0; i < 90; i++ {
		h.ObserveInt(3) // bucket le=4
	}
	for i := 0; i < 10; i++ {
		h.ObserveInt(1000) // bucket le=1024
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %d, want 4", q)
	}
	if q := h.Quantile(0.99); q != 1024 {
		t.Fatalf("p99 = %d, want 1024", q)
	}
	if q := (&Histogram{minShift: 0, maxShift: 4}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestExpositionFormatAndLint(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("app_requests_total", "Requests served.", Label{"route", "try"})
	c2 := r.NewCounter("app_requests_total", "Requests served.", Label{"route", "admit"})
	g := r.NewGauge("app_inflight", "In-flight requests.")
	r.NewGaugeFunc("app_occupancy", "Live sessions.", func() float64 { return 3 })
	h := r.NewHistogram("app_latency_seconds", "Request latency.", UnitSeconds, 8, 10, Label{"path", "read"})
	c.Add(7)
	c2.Add(2)
	g.Set(4)
	h.Observe(300 * time.Nanosecond)
	out := r.WritePrometheus(nil)
	want := strings.Join([]string{
		"# HELP app_requests_total Requests served.",
		"# TYPE app_requests_total counter",
		`app_requests_total{route="try"} 7`,
		`app_requests_total{route="admit"} 2`,
		"# HELP app_inflight In-flight requests.",
		"# TYPE app_inflight gauge",
		"app_inflight 4",
		"# HELP app_occupancy Live sessions.",
		"# TYPE app_occupancy gauge",
		"app_occupancy 3",
		"# HELP app_latency_seconds Request latency.",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{path="read",le="2.56e-07"} 0`,
		`app_latency_seconds_bucket{path="read",le="5.12e-07"} 1`,
		`app_latency_seconds_bucket{path="read",le="1.024e-06"} 1`,
		`app_latency_seconds_bucket{path="read",le="+Inf"} 1`,
		`app_latency_seconds_sum{path="read"} 3e-07`,
		`app_latency_seconds_count{path="read"} 1`,
		"",
	}, "\n")
	if string(out) != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", out, want)
	}
	if probs := Lint(out); len(probs) != 0 {
		t.Fatalf("lint problems: %v", probs)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "# HELP a_total x\na_total 1\n",
		"no HELP":        "# TYPE a_total counter\na_total 1\n",
		"bad type":       "# HELP a x\n# TYPE a summary\na 1\n",
		"negative ctr":   "# HELP a_total x\n# TYPE a_total counter\na_total -1\n",
		"bad value":      "# HELP a x\n# TYPE a gauge\na one\n",
		"non-cumulative": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"no +Inf":        "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, expo := range cases {
		if probs := Lint([]byte(expo)); len(probs) == 0 {
			t.Errorf("%s: lint found nothing in %q", name, expo)
		}
	}
}

func TestRuntimeMetricsRender(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	out := r.WritePrometheus(nil)
	for _, fam := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total", "go_gc_pause_seconds_total"} {
		if !bytes.Contains(out, []byte("# TYPE "+fam+" ")) {
			t.Fatalf("missing family %s in:\n%s", fam, out)
		}
	}
	if probs := Lint(out); len(probs) != 0 {
		t.Fatalf("lint problems: %v", probs)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("ok_total", "h")
	mustPanic("bad name", func() { r.NewCounter("9bad", "h") })
	mustPanic("type clash", func() { r.NewGauge("ok_total", "h") })
	mustPanic("help clash", func() { r.NewCounter("ok_total", "other") })
	mustPanic("le label", func() { r.NewCounter("x_total", "h", Label{"le", "1"}) })
	mustPanic("shift range", func() { r.NewHistogram("h_x", "h", UnitCount, 5, 4) })
}

// TestHotPathAllocFree pins the instrumentation contract: counter
// adds, gauge moves and histogram observations allocate nothing.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_total", "h")
	g := r.NewGauge("t_g", "h")
	h := r.NewHistogram("t_h_seconds", "h", UnitSeconds, 8, 31)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.ObserveInt(1234)
		h.ObserveGroup(20, 4)
	}); n != 0 {
		t.Fatalf("hot path allocates %v/op, want 0", n)
	}
}

func TestTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace id lengths %d/%d, want 32", len(a), len(b))
	}
	if a == b {
		t.Fatal("trace ids collide")
	}
	if !ValidTraceID(a) {
		t.Fatalf("generated id %q not valid", a)
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", "quo\"te", "back\\slash", "ctrl\x01"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	if !ValidTraceID("client-supplied/ID_1") {
		t.Error("reasonable client id rejected")
	}
}

func TestEventLogNDJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, LevelInfo)
	l.clock = func() time.Time { return time.Date(2026, 8, 8, 1, 2, 3, 400, time.UTC) }
	l.Event(LevelInfo, "request").
		Str("trace", "abc").
		Str("route", "try").
		Int("status", 200).
		Dur("latency_us", 1500*time.Microsecond).
		Bool("read", true).
		Send()
	l.Event(LevelDebug, "dropped").Str("k", "v").Send() // below threshold
	line := buf.String()
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one NDJSON line, got %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not JSON: %v\n%q", err, line)
	}
	for k, want := range map[string]any{
		"level": "info", "event": "request", "trace": "abc",
		"route": "try", "status": float64(200), "latency_us": float64(1500), "read": true,
	} {
		if m[k] != want {
			t.Errorf("field %s = %v, want %v", k, m[k], want)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, m["ts"].(string)); err != nil {
		t.Errorf("ts %q: %v", m["ts"], err)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	if l.Enabled(LevelError) {
		t.Fatal("nil log enabled")
	}
	// Every chained call on a disabled log must be a no-op.
	l.Event(LevelError, "x").Str("a", "b").Int("n", 1).Bool("y", true).Dur("d", time.Second).Send()
}

func TestEventLogEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, LevelDebug)
	l.Event(LevelWarn, `e"v\n`).Str("k", "line\nbreak\ttab\x01ctl").Send()
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("escaped line is not JSON: %v\n%q", err, buf.String())
	}
	if m["k"] != "line\nbreak\ttab\x01ctl" {
		t.Fatalf("roundtrip = %q", m["k"])
	}
}

func TestLevelParsing(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError, "bogus": LevelInfo} {
		if got := ParseLevel(s); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestConcurrentScrape exercises scrape-vs-update concurrency (run
// with -race in CI).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_total", "h")
	h := r.NewHistogram("t_h", "h", UnitCount, 0, 20)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.ObserveInt(42)
				}
			}
		}()
	}
	var buf []byte
	for i := 0; i < 50; i++ {
		buf = r.WritePrometheus(buf[:0])
		if probs := Lint(buf); len(probs) != 0 {
			t.Fatalf("lint under concurrency: %v", probs)
		}
	}
	close(stop)
	wg.Wait()
}
