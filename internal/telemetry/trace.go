package telemetry

import (
	"math/rand/v2"
)

// NewTraceID mints a 128-bit correlation ID as 32 lowercase hex
// characters. IDs are for log/response correlation, not security:
// math/rand/v2's per-thread generator keeps minting lock-free and
// seed-independent across goroutines. One allocation (the string).
func NewTraceID() string {
	var b [32]byte
	putHex64(b[0:16], rand.Uint64())
	putHex64(b[16:32], rand.Uint64())
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// ValidTraceID reports whether a client-supplied ID is safe to echo
// and log: 1–64 visible ASCII characters, no quotes or backslashes
// (so it splices into JSON and headers without escaping).
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}
