// Package timeq provides the fixed-point time representation used
// throughout the scheduler, the analysis, and the simulator.
//
// Real-time scheduling analysis is exact integer arithmetic: response
// times are fixed points of ceiling divisions, budgets are subtracted
// tick by tick, and floating point would introduce admission errors at
// the boundary. All times are therefore int64 nanosecond ticks.
package timeq

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is an absolute instant or a duration in nanoseconds. The
// simulator starts at Time(0). A nanosecond granularity comfortably
// covers both the microsecond-scale overheads of the paper's Table 1
// and the millisecond-scale periods of its task sets without overflow:
// int64 nanoseconds span ~292 years.
type Time int64

// Common units, mirroring time.Duration but in our fixed-point type.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Infinity is a sentinel for "never" (unreachable deadline, empty
// timer queue). It is far larger than any simulated horizon.
const Infinity Time = math.MaxInt64

// FromDuration converts a time.Duration to a Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros reports t in microseconds as a float (for human-facing tables;
// never used in admission arithmetic).
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t in milliseconds as a float.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t with an adaptive unit, e.g. "3.3µs", "40ms".
func (t Time) String() string {
	if t == Infinity {
		return "∞"
	}
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return trimZero(fmt.Sprintf("%.3f", t.Micros())) + "µs"
	case t < Second:
		return trimZero(fmt.Sprintf("%.3f", t.Millis())) + "ms"
	default:
		return trimZero(fmt.Sprintf("%.3f", t.Seconds())) + "s"
	}
}

func trimZero(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// CeilDiv returns ⌈a/b⌉ for positive a, b. It is the workhorse of
// response-time analysis: the number of jobs of a period-b task
// released in a window of length a.
func CeilDiv(a, b Time) int64 {
	if b <= 0 {
		panic("timeq: CeilDiv by non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	s := int64(a) + int64(b) - 1
	if uint64(s)|uint64(b) < 1<<52 {
		// Hot path: both operands are exactly representable in
		// float64, and truncating the rounded quotient equals integer
		// floor whenever the dividend is below 2^53 — the quotient's
		// absolute rounding error is under (s/b)·2⁻⁵³ < 1/b, which is
		// the minimum distance from a non-integer rational s/b to the
		// nearest integer, and exact quotients divide exactly. FP
		// divide retires in roughly a third the cycles of a 64-bit
		// integer divide and pipelines, which matters in the RTA
		// inner loops that call this once per interfering entity.
		return int64(float64(s) / float64(b))
	}
	return s / int64(b)
}

// MulCount multiplies a time by an event count, panicking on overflow.
// Analysis code multiplies WCETs by job counts; silent wraparound
// would turn an unschedulable set into an admitted one.
func MulCount(t Time, n int64) Time {
	if n == 0 || t == 0 {
		return 0
	}
	if t > 0 && n > 0 {
		// The hot path (response-time inner loops) multiplies
		// nonnegative operands millions of times per second; checking
		// overflow through the 128-bit product is one multiply
		// instruction, where the division check below costs a ~30-cycle
		// unpipelined divide per call.
		hi, lo := bits.Mul64(uint64(t), uint64(n))
		if hi != 0 || lo > math.MaxInt64 {
			panic("timeq: time multiplication overflow")
		}
		return Time(lo)
	}
	r := int64(t) * n
	if r/n != int64(t) {
		panic("timeq: time multiplication overflow")
	}
	return Time(r)
}

// AddSat adds two times, saturating at Infinity instead of wrapping.
func AddSat(a, b Time) Time {
	if a == Infinity || b == Infinity {
		return Infinity
	}
	s := a + b
	if b > 0 && s < a {
		return Infinity
	}
	return s
}
