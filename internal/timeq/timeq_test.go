package timeq

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", int64(Microsecond))
	}
	if Millisecond != 1_000_000 {
		t.Fatalf("Millisecond = %d", int64(Millisecond))
	}
	if Second != 1_000_000_000 {
		t.Fatalf("Second = %d", int64(Second))
	}
}

func TestFromDurationRoundTrip(t *testing.T) {
	cases := []time.Duration{0, time.Nanosecond, 3300 * time.Nanosecond, 40 * time.Millisecond, time.Hour}
	for _, d := range cases {
		if got := FromDuration(d).Duration(); got != d {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{3300, "3.3µs"},
		{5 * Microsecond, "5µs"},
		{1500, "1.5µs"},
		{40 * Millisecond, "40ms"},
		{2 * Second, "2s"},
		{Infinity, "∞"},
		{-1500, "-1.5µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		a, b Time
		want int64
	}{
		{0, 5, 0},
		{-3, 5, 0},
		{1, 5, 1},
		{5, 5, 1},
		{6, 5, 2},
		{10, 5, 2},
		{11, 5, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestCeilDivProperty(t *testing.T) {
	// ⌈a/b⌉·b ≥ a and (⌈a/b⌉−1)·b < a for positive a.
	f := func(a, b int32) bool {
		if a <= 0 || b <= 0 {
			return true
		}
		q := CeilDiv(Time(a), Time(b))
		return q*int64(b) >= int64(a) && (q-1)*int64(b) < int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

func TestMulCount(t *testing.T) {
	if MulCount(3*Microsecond, 4) != 12*Microsecond {
		t.Error("MulCount basic")
	}
	if MulCount(0, 100) != 0 || MulCount(5, 0) != 0 {
		t.Error("MulCount zero")
	}
}

func TestMulCountOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulCount(Time(math.MaxInt64/2), 3)
}

func TestAddSat(t *testing.T) {
	if AddSat(1, 2) != 3 {
		t.Error("AddSat basic")
	}
	if AddSat(Infinity, 1) != Infinity || AddSat(1, Infinity) != Infinity {
		t.Error("AddSat infinity")
	}
	if AddSat(Time(math.MaxInt64-1), 5) != Infinity {
		t.Error("AddSat should saturate")
	}
}
