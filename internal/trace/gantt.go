package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/task"
	"repro/internal/timeq"
)

// Gantt renders a bucketed per-core occupancy chart for [from, to):
// one row per core, one character per time bucket —
//
//	.  idle
//	#  kernel overhead
//	1  executing τ1 (task IDs ≥ 10 print as letters a, b, …)
//
// Mixed buckets show the dominant occupant. This is the dense
// companion to Timeline: Figure 1 at a glance.
func (b *Buffer) Gantt(w io.Writer, from, to timeq.Time, width int) error {
	if width <= 0 {
		width = 80
	}
	if to <= from {
		return fmt.Errorf("trace: empty gantt window [%v, %v)", from, to)
	}
	span := to - from
	bucket := func(t timeq.Time) int {
		i := int(int64(t-from) * int64(width) / int64(span))
		if i < 0 {
			i = 0
		}
		if i >= width {
			i = width - 1
		}
		return i
	}

	// Reconstruct per-core occupancy intervals from the event stream.
	type interval struct {
		start, end timeq.Time
		sym        byte
	}
	perCore := map[int][]interval{}
	running := map[int]struct {
		t   task.ID
		at  timeq.Time
		set bool
	}{}
	endRun := func(core int, at timeq.Time) {
		r := running[core]
		if !r.set {
			return
		}
		perCore[core] = append(perCore[core], interval{r.at, at, symbolFor(r.t)})
		running[core] = struct {
			t   task.ID
			at  timeq.Time
			set bool
		}{}
	}
	var maxT timeq.Time
	for _, e := range b.Events {
		if e.T > maxT {
			maxT = e.T
		}
		switch e.Kind {
		case Overhead:
			// Kernel segments pause execution implicitly.
			endRun(e.Core, e.T)
			perCore[e.Core] = append(perCore[e.Core], interval{e.T, e.T + e.Dur, '#'})
		case Dispatch:
			endRun(e.Core, e.T)
			running[e.Core] = struct {
				t   task.ID
				at  timeq.Time
				set bool
			}{e.Task, e.T, true}
		case Preempt, Finish, MigrateOut, Idle:
			endRun(e.Core, e.T)
		}
	}
	for core := range running {
		endRun(core, timeq.Min(maxT, to))
	}

	var cores []int
	for c := range perCore {
		cores = append(cores, c)
	}
	if len(cores) == 0 {
		return fmt.Errorf("trace: no events in gantt window")
	}
	// Sort the small core list.
	for i := 0; i < len(cores); i++ {
		for j := i + 1; j < len(cores); j++ {
			if cores[j] < cores[i] {
				cores[i], cores[j] = cores[j], cores[i]
			}
		}
	}

	fmt.Fprintf(w, "gantt %v .. %v (%v per column)\n", from, to, span/timeq.Time(width))
	for _, c := range cores {
		row := []byte(strings.Repeat(".", width))
		for _, iv := range perCore[c] {
			if iv.end <= from || iv.start >= to {
				continue
			}
			lo := bucket(timeq.Max(iv.start, from))
			hi := bucket(timeq.Min(iv.end, to) - 1)
			for i := lo; i <= hi && i < width; i++ {
				// Overhead marks win over execution in mixed buckets
				// only if the bucket is still idle; execution wins
				// otherwise (it dominates duration in practice).
				if row[i] == '.' || row[i] == '#' {
					row[i] = iv.sym
				}
			}
		}
		fmt.Fprintf(w, "core %d |%s|\n", c, row)
	}
	return nil
}

// symbolFor maps a task ID to a single display character.
func symbolFor(id task.ID) byte {
	if id < 10 {
		return byte('0' + id)
	}
	c := 'a' + int(id) - 10
	if c > 'z' {
		return '+'
	}
	return byte(c)
}
