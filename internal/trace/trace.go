// Package trace records and renders simulator event streams. The
// renderer reproduces the paper's Figure 1: a per-core timeline in
// which job execution is interleaved with labeled overhead segments
// (rls, sch, cnt1, cnt2, cache).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/task"
	"repro/internal/timeq"
)

// Kind classifies a trace event.
type Kind int

// Event kinds.
const (
	// Release: a job was released (timer fired on its home core).
	Release Kind = iota
	// Dispatch: a job started or resumed execution on a core.
	Dispatch
	// Preempt: a running job was preempted and requeued.
	Preempt
	// Finish: a job completed all its execution.
	Finish
	// MigrateOut: a body part exhausted its budget; the job was
	// pushed to the next core.
	MigrateOut
	// MigrateIn: the job landed in the destination core's ready queue.
	MigrateIn
	// Overhead: kernel time charged on a core; Label names the
	// category (rls, sch, cnt1, cnt2, rq-add, rq-del, sq-add,
	// sq-del, cache).
	Overhead
	// DeadlineMiss: a job completed after its deadline or was
	// aborted by the next release of its task.
	DeadlineMiss
	// Idle: a core went idle.
	Idle
)

var kindNames = map[Kind]string{
	Release: "release", Dispatch: "dispatch", Preempt: "preempt",
	Finish: "finish", MigrateOut: "migrate-out", MigrateIn: "migrate-in",
	Overhead: "overhead", DeadlineMiss: "MISS", Idle: "idle",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one record in the stream.
type Event struct {
	T     timeq.Time
	Core  int
	Kind  Kind
	Task  task.ID
	Part  int
	Dur   timeq.Time // for Overhead and execution spans
	Label string     // overhead category or free-form detail
}

// String renders the event as one log line.
func (e Event) String() string {
	s := fmt.Sprintf("[%12v] core%d %-11v τ%d", e.T, e.Core, e.Kind, e.Task)
	if e.Part > 0 {
		s += fmt.Sprintf("/%d", e.Part)
	}
	if e.Label != "" {
		s += " " + e.Label
	}
	if e.Dur > 0 {
		s += fmt.Sprintf(" (%v)", e.Dur)
	}
	return s
}

// Recorder consumes simulator events.
type Recorder interface {
	Record(Event)
}

// Buffer is a Recorder that retains every event in order.
type Buffer struct {
	Events []Event
}

// Record appends the event.
func (b *Buffer) Record(e Event) { b.Events = append(b.Events, e) }

// Filter returns the events of the given kinds, in order.
func (b *Buffer) Filter(kinds ...Kind) []Event {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range b.Events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// OverheadByLabel sums Overhead event durations per category.
func (b *Buffer) OverheadByLabel() map[string]timeq.Time {
	out := map[string]timeq.Time{}
	for _, e := range b.Events {
		if e.Kind == Overhead {
			out[e.Label] += e.Dur
		}
	}
	return out
}

// WriteLog writes the full event log to w, one line per event.
func (b *Buffer) WriteLog(w io.Writer) error {
	for _, e := range b.Events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Discard is a Recorder that drops everything (the default).
type Discard struct{}

// Record drops the event.
func (Discard) Record(Event) {}

// Timeline renders a Figure-1-style textual timeline: for each core,
// the chronological sequence of execution and overhead spans between
// from and to.
func (b *Buffer) Timeline(w io.Writer, from, to timeq.Time) error {
	type span struct {
		t    timeq.Time
		text string
	}
	perCore := map[int][]span{}
	cores := map[int]bool{}
	for _, e := range b.Events {
		if e.T < from || e.T > to {
			continue
		}
		cores[e.Core] = true
		var text string
		switch e.Kind {
		case Overhead:
			text = fmt.Sprintf("|%s %v|", e.Label, e.Dur)
		case Dispatch:
			text = fmt.Sprintf("→τ%d run", e.Task)
		case Preempt:
			text = fmt.Sprintf("τ%d preempted", e.Task)
		case Release:
			text = fmt.Sprintf("release τ%d", e.Task)
		case Finish:
			text = fmt.Sprintf("τ%d done", e.Task)
		case MigrateOut:
			text = fmt.Sprintf("τ%d/%d ↷ migrate", e.Task, e.Part)
		case MigrateIn:
			text = fmt.Sprintf("τ%d/%d ↴ arrive", e.Task, e.Part)
		case DeadlineMiss:
			text = fmt.Sprintf("** τ%d MISS **", e.Task)
		case Idle:
			text = "idle"
		default:
			continue
		}
		perCore[e.Core] = append(perCore[e.Core], span{e.T, text})
	}
	var ids []int
	for c := range cores {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, c := range ids {
		if _, err := fmt.Fprintf(w, "core %d:\n", c); err != nil {
			return err
		}
		for _, s := range perCore[c] {
			if _, err := fmt.Fprintf(w, "  %12v  %s\n", s.t, s.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary formats the per-category overhead totals as the paper's
// terminology (rls, sch, cnt, queue ops, cache).
func (b *Buffer) Summary() string {
	by := b.OverheadByLabel()
	var labels []string
	for l := range by {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var sb strings.Builder
	sb.WriteString("overhead totals:\n")
	for _, l := range labels {
		fmt.Fprintf(&sb, "  %-6s %v\n", l, by[l])
	}
	return sb.String()
}
