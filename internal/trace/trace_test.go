package trace

import (
	"strings"
	"testing"

	"repro/internal/timeq"
)

func sample() *Buffer {
	b := &Buffer{}
	b.Record(Event{T: 0, Core: 0, Kind: Release, Task: 2})
	b.Record(Event{T: 0, Core: 0, Kind: Overhead, Label: "rls", Dur: 3 * timeq.Microsecond})
	b.Record(Event{T: 0, Core: 0, Kind: Overhead, Label: "sch", Dur: 5 * timeq.Microsecond})
	b.Record(Event{T: 17 * timeq.Microsecond, Core: 0, Kind: Dispatch, Task: 2})
	b.Record(Event{T: 2 * timeq.Millisecond, Core: 0, Kind: Preempt, Task: 2})
	b.Record(Event{T: 2 * timeq.Millisecond, Core: 0, Kind: Overhead, Label: "rls", Dur: 3 * timeq.Microsecond})
	b.Record(Event{T: 4 * timeq.Millisecond, Core: 1, Kind: MigrateIn, Task: 3, Part: 1})
	b.Record(Event{T: 5 * timeq.Millisecond, Core: 0, Kind: Finish, Task: 2})
	b.Record(Event{T: 6 * timeq.Millisecond, Core: 0, Kind: DeadlineMiss, Task: 2})
	b.Record(Event{T: 7 * timeq.Millisecond, Core: 0, Kind: Idle})
	b.Record(Event{T: 8 * timeq.Millisecond, Core: 1, Kind: MigrateOut, Task: 3, Part: 1})
	return b
}

func TestKindStrings(t *testing.T) {
	for k := Release; k <= Idle; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind fallback")
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: timeq.Millisecond, Core: 2, Kind: Overhead, Task: 5, Part: 1, Dur: 3 * timeq.Microsecond, Label: "rls"}
	s := e.String()
	for _, want := range []string{"core2", "overhead", "τ5", "/1", "rls", "3µs"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestFilter(t *testing.T) {
	b := sample()
	if got := b.Filter(Overhead); len(got) != 3 {
		t.Fatalf("overhead events: %d", len(got))
	}
	if got := b.Filter(Release, Finish); len(got) != 2 {
		t.Fatalf("release+finish: %d", len(got))
	}
	if got := b.Filter(); len(got) != 0 {
		t.Fatalf("empty filter: %d", len(got))
	}
}

func TestOverheadByLabel(t *testing.T) {
	by := sample().OverheadByLabel()
	if by["rls"] != 6*timeq.Microsecond || by["sch"] != 5*timeq.Microsecond {
		t.Fatalf("totals %v", by)
	}
}

func TestWriteLog(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteLog(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 11 {
		t.Fatalf("log lines: %d", strings.Count(sb.String(), "\n"))
	}
}

func TestTimelineWindowAndCores(t *testing.T) {
	var sb strings.Builder
	if err := sample().Timeline(&sb, 0, 5*timeq.Millisecond); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "core 0:") || !strings.Contains(out, "core 1:") {
		t.Fatalf("cores missing:\n%s", out)
	}
	if !strings.Contains(out, "release τ2") || !strings.Contains(out, "|rls 3µs|") {
		t.Fatalf("events missing:\n%s", out)
	}
	if !strings.Contains(out, "↴ arrive") {
		t.Fatalf("migration arrow missing:\n%s", out)
	}
	// Events outside the window are excluded.
	if strings.Contains(out, "MISS") || strings.Contains(out, "idle") || strings.Contains(out, "↷") {
		t.Fatalf("out-of-window events leaked:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	s := sample().Summary()
	if !strings.Contains(s, "rls") || !strings.Contains(s, "6µs") {
		t.Fatalf("summary:\n%s", s)
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Record(Event{}) // must not panic
}

func TestGantt(t *testing.T) {
	b := &Buffer{}
	// core 0: overhead at 0 (10µs), τ1 runs 10µs..1ms, preempted,
	// overhead, τ2 runs 1ms..2ms, idle after.
	b.Record(Event{T: 0, Core: 0, Kind: Overhead, Label: "rls", Dur: 10 * timeq.Microsecond})
	b.Record(Event{T: 10 * timeq.Microsecond, Core: 0, Kind: Dispatch, Task: 1})
	b.Record(Event{T: timeq.Millisecond, Core: 0, Kind: Preempt, Task: 1})
	b.Record(Event{T: timeq.Millisecond, Core: 0, Kind: Overhead, Label: "sch", Dur: 5 * timeq.Microsecond})
	b.Record(Event{T: timeq.Millisecond + 5*timeq.Microsecond, Core: 0, Kind: Dispatch, Task: 12})
	b.Record(Event{T: 2 * timeq.Millisecond, Core: 0, Kind: Finish, Task: 12})
	var sb strings.Builder
	if err := b.Gantt(&sb, 0, 3*timeq.Millisecond, 30); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "core 0 |") {
		t.Fatalf("gantt:\n%s", out)
	}
	row := out[strings.Index(out, "|")+1:]
	if !strings.Contains(row, "1") || !strings.Contains(row, "c") {
		t.Fatalf("gantt missing execution symbols (τ1 → '1', τ12 → 'c'):\n%s", out)
	}
	if !strings.Contains(row, ".") {
		t.Fatalf("gantt missing idle tail:\n%s", out)
	}
	// Errors: empty window, no events.
	if err := b.Gantt(&sb, 5, 5, 10); err == nil {
		t.Error("empty window accepted")
	}
	empty := &Buffer{}
	if err := empty.Gantt(&sb, 0, timeq.Millisecond, 10); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestSymbolFor(t *testing.T) {
	if symbolFor(3) != '3' || symbolFor(10) != 'a' || symbolFor(35) != 'z' || symbolFor(99) != '+' {
		t.Error("symbol mapping")
	}
}
