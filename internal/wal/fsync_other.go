//go:build !unix

package wal

// Non-unix hosts have no cheap descriptor clone; Sync falls back to
// fsyncing under the log mutex.
func dupFD(fd uintptr) (int, bool) { return -1, false }

func fsyncFD(fd int) error { return nil }

func closeFD(fd int) {}
