//go:build unix

package wal

import "syscall"

// dupFD clones a file descriptor so an fsync can run after the log
// mutex is released: fsync acts on the inode, not the descriptor, so
// the clone flushes everything written through the original — and
// stays valid even if the original is closed mid-sync. Appenders
// keep the mutex (and the single CPU) while the flush waits on the
// device.
func dupFD(fd uintptr) (int, bool) {
	d, err := syscall.Dup(int(fd))
	return d, err == nil
}

func fsyncFD(fd int) error { return syscall.Fsync(fd) }

func closeFD(fd int) { _ = syscall.Close(fd) }
