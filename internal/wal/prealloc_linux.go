//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fallocKeepSize is FALLOC_FL_KEEP_SIZE: reserve blocks without
// changing the file's logical size. Keeping the size is load-bearing
// — recovery scans to EOF, so a zero-filled logical tail would parse
// as a torn frame and report a spurious truncation.
const fallocKeepSize = 0x01

// preallocate best-effort reserves n bytes for the segment so appends
// extend into already-allocated extents instead of taking a block
// allocation (and the associated metadata journaling) inside the
// fsync window. Filesystems without fallocate support just decline.
func preallocate(f *os.File, n int64) {
	_ = syscall.Fallocate(int(f.Fd()), fallocKeepSize, 0, n)
}
