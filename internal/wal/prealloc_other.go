//go:build !linux

package wal

import "os"

// preallocate is a no-op where fallocate is unavailable; appends
// extend the segment on demand.
func preallocate(*os.File, int64) {}
