//go:build linux

package wal

import (
	"syscall"
	"time"
)

// sleepPrecise sleeps ~d using the nanosleep syscall directly. Go's
// own timers round through the netpoller, whose effective resolution
// on small virtualized hosts is ~1ms — a group-commit window below
// that silently becomes the poller's floor, tripling commit latency
// (a "250µs" window that actually sleeps 1.1ms). Direct nanosleep
// tracks the kernel hrtimer: 250µs requests land within ~100µs.
// Blocking the OS thread is fine — the runtime detaches the P from a
// thread stuck in a syscall within microseconds, so other goroutines
// keep running.
func sleepPrecise(d time.Duration) {
	ts := syscall.NsecToTimespec(d.Nanoseconds())
	for {
		var rem syscall.Timespec
		// The runtime's preemption signals interrupt nanosleep
		// routinely; resume with the remainder until it completes.
		if err := syscall.Nanosleep(&ts, &rem); err != syscall.EINTR {
			return
		}
		ts = rem
	}
}
