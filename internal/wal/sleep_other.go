//go:build !linux

package wal

import "time"

// sleepPrecise falls back to the runtime timer where nanosleep is not
// available; group-commit windows below the platform timer resolution
// degrade to that resolution.
func sleepPrecise(d time.Duration) { time.Sleep(d) }
