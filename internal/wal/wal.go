// Package wal is the durability plane's commit log: an append-only,
// segmented record log with CRC32C framing, monotonic log sequence
// numbers, a configurable fsync policy, and truncate-at-last-valid-
// record crash recovery. It depends on nothing outside the standard
// library and knows nothing about sessions: callers append opaque
// payloads keyed by a (stream, seq) pair and get them back, in order,
// from Replay.
//
// # Framing
//
// Every record is one length-prefixed frame:
//
//	u32  length   — bytes after the crc field (lsn..payload)
//	u32  crc32c   — Castagnoli checksum of those bytes
//	u64  lsn      — log sequence number, +1 per append, log-wide
//	u64  seq      — caller's per-stream sequence number (opaque here)
//	u16  streamLen
//	     stream   — the stream key (a session, for admitd)
//	     payload  — opaque caller bytes
//
// Frames live in segment files named wal-%016x.log (the hex of the
// first LSN the segment holds), each opened with a 16-byte header
// (magic + first LSN). Appends go to the newest ("active") segment;
// when it passes Options.SegmentBytes it is sealed and a new one
// started. Compact removes a fully-covered prefix of sealed segments
// — the low-water truncation that pairs with checkpointing.
//
// # Fsync policy
//
// SyncAlways fsyncs every append; SyncGroup buffers appends and
// fsyncs once per Commit (admitd calls Commit at the group-commit
// drain boundary, so durability piggybacks on the existing batching);
// SyncOff never fsyncs (the OS flushes when it likes) but still
// writes on Commit, so a clean process exit loses nothing.
//
// # Recovery invariant
//
// Open scans every segment front to back, verifying the header, the
// per-frame checksum, and LSN continuity (segments are contiguous:
// compaction only ever removes a prefix). At the FIRST anomaly — a
// torn tail write, a flipped bit, a zero-filled page, a duplicated
// or foreign segment file — the log is truncated at the last valid
// record: the offending bytes and every later segment are dropped,
// and the Recovery report says where and why. Everything before the
// truncation point is intact and appendable.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy picks when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncGroup (the default) buffers appends and fsyncs once per
	// Commit, however many records are pending. Callers that want
	// batching across goroutines use a GroupSync, or skip Commit
	// entirely and drive Sync from a background committer (admitd's
	// bounded-loss group policy).
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside every Append.
	SyncAlways
	// SyncOff never fsyncs; Commit still writes buffered frames to
	// the file, so only an OS crash (not a process crash) loses data.
	SyncOff
)

// String is the canonical flag spelling (always|group|off).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "group"
	}
}

// ParseSyncPolicy maps the flag spelling; "" means SyncGroup.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	default:
		return SyncGroup, fmt.Errorf("wal: unknown fsync policy %q (always|group|off)", s)
	}
}

// Options parameterizes Open.
type Options struct {
	// Dir holds the segment files (created if missing).
	Dir string
	// SegmentBytes seals the active segment once it grows past this;
	// 0 means 4 MiB.
	SegmentBytes int64
	// Policy is the fsync policy (default SyncGroup).
	Policy SyncPolicy
	// OnFsync, when non-nil, observes every fsync's duration —
	// the telemetry hook (called without the log's lock held state
	// exposed; keep it cheap).
	OnFsync func(time.Duration)
}

// Record is one replayed log entry. Payload aliases the replay
// buffer: it is valid only inside the Replay callback — copy it to
// keep it.
type Record struct {
	LSN     uint64
	Seq     int64
	Stream  string
	Payload []byte
}

// Recovery reports what Open found: how much of the log was valid
// and, when an anomaly forced truncation, where and why.
type Recovery struct {
	Segments int    // segment files kept
	Records  uint64 // valid records found
	NextLSN  uint64 // first LSN the reopened log will assign

	Truncated       bool   // an anomaly truncated the log
	Reason          string // first anomaly ("crc mismatch", ...)
	File            string // segment file holding the anomaly
	Offset          int64  // byte offset of the anomaly in File
	DroppedBytes    int64  // bytes discarded at and after the anomaly
	DroppedSegments int    // whole segment files discarded
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Segments int   // live segment files (sealed + active)
	Bytes    int64 // logical bytes appended over the log's lifetime
	Appends  uint64
	Fsyncs   uint64
}

const (
	segMagic   = "SPWALSEG"
	headerSize = 16
	// frameFixed is the fixed part of the CRC-covered region:
	// lsn (8) + seq (8) + streamLen (2).
	frameFixed = 18
	// maxFrame bounds one frame's length field — anything bigger is
	// garbage, not a record.
	maxFrame = 16 << 20
	// flushThreshold bounds the in-memory append buffer between
	// Commits.
	flushThreshold = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// seqRange is the [min, max] caller sequence span one segment holds
// for one stream — the compaction coverage index.
type seqRange struct{ min, max int64 }

type segment struct {
	path     string
	firstLSN uint64
	lastLSN  uint64 // firstLSN-1 when empty
	records  int64
	size     int64 // logical bytes (header + frames, buffered included)
	streams  map[string]seqRange
}

func (s *segment) note(stream string, seq int64) {
	r, ok := s.streams[stream]
	if !ok {
		s.streams[stream] = seqRange{min: seq, max: seq}
		return
	}
	if seq < r.min {
		r.min = seq
	}
	if seq > r.max {
		r.max = seq
	}
	s.streams[stream] = r
}

// Log is one open commit log. All methods are safe for concurrent
// use; Append serializes under one mutex (admitd shares one Log per
// store shard).
type Log struct {
	mu     sync.Mutex
	opts   Options
	sealed []*segment
	active *segment
	f      *os.File
	buf    []byte // appended frames not yet written to f
	dirty  bool   // bytes written to f since the last fsync
	closed bool

	nextLSN uint64
	appends uint64
	fsyncs  uint64
	bytes   int64
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

func segNameLSN(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// parseFrame decodes one frame at data[off:]. A "" reason with size 0
// is the clean end of data; a non-empty reason names the anomaly.
func parseFrame(data []byte, off int) (rec Record, size int, reason string) {
	rest := data[off:]
	if len(rest) == 0 {
		return Record{}, 0, ""
	}
	if len(rest) < 8 {
		return Record{}, 0, "truncated frame header"
	}
	l := binary.LittleEndian.Uint32(rest)
	if l < frameFixed || l > maxFrame {
		return Record{}, 0, fmt.Sprintf("bad frame length %d", l)
	}
	if len(rest) < 8+int(l) {
		return Record{}, 0, "truncated frame body"
	}
	crc := binary.LittleEndian.Uint32(rest[4:])
	body := rest[8 : 8+l]
	if crc32.Checksum(body, castagnoli) != crc {
		return Record{}, 0, "crc mismatch"
	}
	sl := int(binary.LittleEndian.Uint16(body[16:]))
	if frameFixed+sl > int(l) {
		return Record{}, 0, "bad stream length"
	}
	rec = Record{
		LSN:     binary.LittleEndian.Uint64(body),
		Seq:     int64(binary.LittleEndian.Uint64(body[8:])),
		Stream:  string(body[frameFixed : frameFixed+sl]),
		Payload: body[frameFixed+sl:],
	}
	return rec, 8 + int(l), ""
}

// scanSegment validates one segment file front to back, returning the
// valid-prefix description and, when the scan hit an anomaly, its
// reason and offset. An I/O error aborts the open instead.
func scanSegment(path string) (seg *segment, reason string, offset int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", 0, err
	}
	nameLSN, ok := segNameLSN(filepath.Base(path))
	if !ok {
		return nil, "bad segment name", 0, nil
	}
	if len(data) < headerSize {
		return nil, "truncated segment header", 0, nil
	}
	if string(data[:8]) != segMagic {
		return nil, "bad segment magic", 0, nil
	}
	first := binary.LittleEndian.Uint64(data[8:])
	if first != nameLSN {
		return nil, "segment header/name mismatch", 0, nil
	}
	seg = &segment{
		path:     path,
		firstLSN: first,
		lastLSN:  first - 1,
		size:     headerSize,
		streams:  make(map[string]seqRange),
	}
	off := headerSize
	for {
		rec, n, bad := parseFrame(data, off)
		if bad != "" {
			return seg, bad, int64(off), nil
		}
		if n == 0 {
			return seg, "", 0, nil
		}
		if rec.LSN != seg.lastLSN+1 {
			return seg, fmt.Sprintf("lsn discontinuity (%d after %d)", rec.LSN, seg.lastLSN), int64(off), nil
		}
		seg.lastLSN = rec.LSN
		seg.records++
		seg.note(rec.Stream, rec.Seq)
		seg.size += int64(n)
		off += n
	}
}

// Open opens (or creates) the log in opts.Dir, running recovery over
// whatever is on disk. It never fails on corrupt data — corruption
// truncates, and the Recovery report says so — only on I/O errors.
func Open(opts Options) (*Log, *Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := segNameLSN(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // %016x: name order is LSN order

	l := &Log{opts: opts}
	rec := &Recovery{}
	lastLSN := uint64(0) // last assigned LSN (empty segments count: firstLSN-1)
	haveSeg := false
	drop := func(i int, reason string, file string, offset int64) error {
		// First anomaly: record it, then discard the offending bytes
		// and every later segment.
		rec.Truncated = true
		rec.Reason = reason
		rec.File = file
		rec.Offset = offset
		for _, name := range names[i:] {
			p := filepath.Join(opts.Dir, name)
			if fi, err := os.Stat(p); err == nil {
				rec.DroppedBytes += fi.Size()
			}
			if err := os.Remove(p); err != nil {
				return err
			}
			rec.DroppedSegments++
		}
		return syncDir(opts.Dir)
	}
scan:
	for i, name := range names {
		path := filepath.Join(opts.Dir, name)
		seg, reason, offset, err := scanSegment(path)
		if err != nil {
			return nil, nil, err
		}
		if seg != nil && reason == "" {
			// Continuity across segments: compaction removes prefixes
			// only, so survivors are contiguous. An empty segment is
			// only ever the active tail.
			wrongStart := haveSeg && seg.firstLSN != lastLSN+1
			emptyMid := seg.records == 0 && i != len(names)-1
			if wrongStart || emptyMid {
				why := "segment lsn discontinuity"
				if emptyMid {
					why = "empty non-final segment"
				}
				if err := drop(i, why, name, 0); err != nil {
					return nil, nil, err
				}
				break scan
			}
			l.sealed = append(l.sealed, seg)
			lastLSN = seg.lastLSN
			haveSeg = true
			rec.Records += uint64(seg.records)
			continue
		}
		// Anomaly inside this segment: keep its valid prefix if it
		// holds records, then drop the rest of the log.
		keep := seg != nil && seg.records > 0 &&
			(!haveSeg || seg.firstLSN == lastLSN+1)
		if keep {
			fi, err := os.Stat(path)
			if err != nil {
				return nil, nil, err
			}
			rec.Truncated = true
			rec.Reason = reason
			rec.File = name
			rec.Offset = offset
			rec.DroppedBytes += fi.Size() - seg.size
			if err := truncateFile(path, seg.size); err != nil {
				return nil, nil, err
			}
			l.sealed = append(l.sealed, seg)
			lastLSN = seg.lastLSN
			rec.Records += uint64(seg.records)
			if err := drop(i+1, reason, name, offset); err != nil {
				return nil, nil, err
			}
		} else if err := drop(i, reason, name, offset); err != nil {
			return nil, nil, err
		}
		break scan
	}

	l.nextLSN = lastLSN + 1
	rec.Segments = len(l.sealed)
	rec.NextLSN = l.nextLSN

	// The newest surviving segment becomes active again; a fresh log
	// (or a fully-dropped one) starts a new segment.
	if n := len(l.sealed); n > 0 {
		l.active = l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		f, err := os.OpenFile(l.active.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if _, err := f.Seek(l.active.size, 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f = f
	} else if err := l.newSegmentLocked(); err != nil {
		return nil, nil, err
	}
	for _, s := range l.sealed {
		l.bytes += s.size
	}
	l.bytes += l.active.size
	return l, rec, nil
}

func truncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// newSegmentLocked creates and activates the next segment file.
func (l *Log) newSegmentLocked() error {
	first := l.nextLSN
	if first == 0 {
		first = 1
		l.nextLSN = 1
	}
	path := filepath.Join(l.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	// Reserve the segment's extents up front (keeping the logical
	// size) so the fsync-per-commit path never pays block allocation.
	preallocate(f, l.opts.SegmentBytes)
	var hdr [headerSize]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.dirty = true
	l.active = &segment{
		path:     path,
		firstLSN: first,
		lastLSN:  first - 1,
		size:     headerSize,
		streams:  make(map[string]seqRange),
	}
	l.bytes += headerSize
	if err := syncDir(l.opts.Dir); err != nil {
		return err
	}
	if l.opts.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

var errClosed = fmt.Errorf("wal: log closed")

// Append stages one record. Under SyncAlways it is durable on
// return; under SyncGroup/SyncOff it is buffered until Commit (or
// the buffer threshold). Returns the record's LSN.
func (l *Log) Append(stream string, seq int64, payload []byte) (uint64, error) {
	if len(stream) > 1<<16-1 {
		return 0, fmt.Errorf("wal: stream key too long (%d bytes)", len(stream))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	lsn := l.nextLSN
	l.nextLSN++

	frameLen := frameFixed + len(stream) + len(payload)
	start := len(l.buf)
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(frameLen))
	crcAt := len(l.buf)
	l.buf = binary.LittleEndian.AppendUint32(l.buf, 0)
	body := len(l.buf)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, lsn)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(seq))
	l.buf = binary.LittleEndian.AppendUint16(l.buf, uint16(len(stream)))
	l.buf = append(l.buf, stream...)
	l.buf = append(l.buf, payload...)
	binary.LittleEndian.PutUint32(l.buf[crcAt:], crc32.Checksum(l.buf[body:], castagnoli))

	n := int64(len(l.buf) - start)
	l.active.size += n
	l.active.lastLSN = lsn
	l.active.records++
	l.active.note(stream, seq)
	l.appends++
	l.bytes += n

	var err error
	switch {
	case l.opts.Policy == SyncAlways:
		err = l.syncLocked()
	case len(l.buf) >= flushThreshold:
		err = l.flushLocked()
	}
	if err == nil && l.active.size >= l.opts.SegmentBytes {
		err = l.rotateLocked()
	}
	return lsn, err
}

// flushLocked writes buffered frames to the active file.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	l.dirty = true
	return nil
}

// syncLocked flushes and fsyncs (if anything reached the file since
// the last fsync — concurrent committers coalesce on this check).
func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs++
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(time.Since(start))
	}
	return nil
}

// Commit makes everything appended so far as durable as the policy
// promises: SyncGroup fsyncs (once, however many records are
// pending), SyncOff and SyncAlways just ensure the file is written.
// admitd calls this at each actor drain's group-commit boundary,
// before acknowledging the drained requests.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if l.opts.Policy == SyncGroup {
		return l.syncLocked()
	}
	return l.flushLocked()
}

// Flush writes buffered frames to the active segment file without
// fsyncing — the first half of a cross-log group commit; pair with
// Sync (GroupSync drives both).
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	return l.flushLocked()
}

// Sync flushes and fsyncs if anything reached the file since the
// last fsync. Unlike Commit it ignores the configured policy: the
// caller (a GroupSync batch or the background committer) has already
// decided a sync must happen. The fsync itself runs on a dup'ed
// descriptor with the log mutex released, so appenders are never
// stalled behind the device flush — records that land mid-sync set
// the dirty flag again and ride the next sync.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if !l.dirty {
		l.mu.Unlock()
		return nil
	}
	fd, ok := dupFD(l.f.Fd())
	if !ok {
		defer l.mu.Unlock()
		return l.syncLocked()
	}
	l.dirty = false
	l.mu.Unlock()

	start := time.Now()
	err := fsyncFD(fd)
	closeFD(fd)
	elapsed := time.Since(start)

	l.mu.Lock()
	if err != nil {
		l.dirty = true
	} else {
		l.fsyncs++
	}
	l.mu.Unlock()
	if err == nil && l.opts.OnFsync != nil {
		l.opts.OnFsync(elapsed)
	}
	return err
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if l.active.records == 0 {
		return nil
	}
	if l.opts.Policy == SyncOff {
		if err := l.flushLocked(); err != nil {
			return err
		}
	} else if err := l.syncLocked(); err != nil {
		// A sealed segment is never written again: sync it on the way
		// out so compaction and recovery can trust it.
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, l.active)
	return l.newSegmentLocked()
}

// Rotate seals the active segment (a no-op when it holds no records)
// so a following Compact can consider its records. The checkpoint
// loop calls this before compacting.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	return l.rotateLocked()
}

// Compact removes the longest fully-covered prefix of sealed
// segments: a segment goes when covered(stream, maxSeq) is true for
// every stream it holds records of — i.e. every record in it is
// reflected in a checkpoint. Returns how many segments were removed.
func (l *Log) Compact(covered func(stream string, maxSeq int64) bool) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	removed := 0
	for len(l.sealed) > 0 {
		seg := l.sealed[0]
		ok := true
		for stream, r := range seg.streams {
			if !covered(stream, r.max) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return removed, err
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	if removed > 0 {
		return removed, syncDir(l.opts.Dir)
	}
	return 0, nil
}

// replaySpan is one file's worth of replay work, captured under the
// lock so reads run without it.
type replaySpan struct {
	path  string
	limit int64
}

// Replay streams every record, oldest first, into fn. Payload bytes
// alias the read buffer — valid only during the callback. Replay
// runs concurrently with appends: it sees everything appended (and
// flushed) before the call. A sealed segment compacted away mid-read
// is skipped — its records were checkpoint-covered by definition.
func (l *Log) Replay(fn func(Record) error) error {
	return l.replay("", -1<<62, fn)
}

// ReplayStream is Replay filtered to one stream's records with
// seq > afterSeq; segments whose index shows nothing newer for the
// stream are skipped without being read.
func (l *Log) ReplayStream(stream string, afterSeq int64, fn func(Record) error) error {
	return l.replay(stream, afterSeq, fn)
}

func (l *Log) replay(stream string, afterSeq int64, fn func(Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	want := func(seg *segment) bool {
		if stream == "" {
			return seg.records > 0
		}
		r, ok := seg.streams[stream]
		return ok && r.max > afterSeq
	}
	var spans []replaySpan
	for _, seg := range l.sealed {
		if want(seg) {
			spans = append(spans, replaySpan{seg.path, seg.size})
		}
	}
	if want(l.active) {
		spans = append(spans, replaySpan{l.active.path, l.active.size})
	}
	l.mu.Unlock()

	for _, sp := range spans {
		data, err := os.ReadFile(sp.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted under us: covered records
			}
			return err
		}
		if int64(len(data)) > sp.limit {
			data = data[:sp.limit]
		}
		off := headerSize
		for {
			rec, n, bad := parseFrame(data, off)
			if n == 0 {
				if bad != "" {
					// Only pre-validated bytes are read; reaching this
					// means the file changed underneath us.
					return fmt.Errorf("wal: replay %s at %d: %s", sp.path, off, bad)
				}
				break
			}
			off += n
			if stream != "" && (rec.Stream != stream || rec.Seq <= afterSeq) {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments: len(l.sealed) + 1,
		Bytes:    l.bytes,
		Appends:  l.appends,
		Fsyncs:   l.fsyncs,
	}
}

// Close flushes (and, unless SyncOff, fsyncs) and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	var err error
	if l.opts.Policy == SyncOff {
		err = l.flushLocked()
	} else {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// --- cross-log group commit -------------------------------------------

// GroupSync coalesces concurrent committers — possibly on different
// Logs — into shared fsync batches, optionally rate-limited to one
// sync start per window. A committer flushes its log, joins the
// accumulating batch, and waits for that batch's fsyncs. The first
// committer of a batch leads it: if the previous batch's fsync
// started less than a window ago, the leader sleeps out the
// remainder — the batch keeps filling with every committer that
// arrives — then detaches the batch and fsyncs its logs (concurrent
// fsyncs of distinct files merge under one journal transaction on
// ext4-like filesystems). An idle committer therefore pays one
// immediate fsync; a loaded system pays one fsync per window,
// however many committers pile in.
//
// The window is the commit-delay throughput/latency dial (Postgres
// commit_delay, MySQL binlog sync-delay): on hardware where an fsync
// burns ~150µs of CPU, an unthrottled fsync-per-drain spends the
// whole core on syncs; a 1ms window caps that at ~15% while acks
// still mean durable — they wait for the covering sync.
type GroupSync struct {
	mu        sync.Mutex
	window    time.Duration
	next      *syncBatch      // accumulating batch; nil until a committer joins
	last      <-chan struct{} // previous batch's ready channel; chains batch order
	lastStart time.Time       // when the last batch's fsyncs started
}

type syncBatch struct {
	logs  map[*Log]struct{}
	prev  <-chan struct{} // previous batch's ready; fsyncs start after it closes
	ready chan struct{}   // closed once err is set; each follower blocks here once
	err   error           // first fsync error of the batch, reported to every waiter
}

// NewGroupSync returns a scheduler that starts at most one fsync
// batch per window (0 = no throttle: every batch syncs as soon as
// the previous one finishes). The zero value is not usable.
func NewGroupSync(window time.Duration) *GroupSync {
	return &GroupSync{window: window}
}

// Commit makes everything appended to l so far durable, sharing
// fsyncs with every other Commit in flight on this scheduler. Safe
// for concurrent use; returns the first error of the batch that
// covered the call (an error on any log fails the whole batch's
// waiters — durability was not established for the batch window).
//
// Completion is a per-batch closed channel, not a condvar: every
// waiter blocks exactly once and wakes exactly once. A Broadcast
// design wakes every in-flight committer on every batch completion —
// with hundreds of pipelined commits on a small host, that scheduler
// churn costs more than the fsyncs the window saves.
func (g *GroupSync) Commit(l *Log) error {
	// Flush before joining: any batch that starts after this point
	// covers the flushed bytes.
	if err := l.Flush(); err != nil {
		return err
	}
	g.mu.Lock()
	if b := g.next; b != nil {
		// Follow: the batch's leader fsyncs for us.
		b.logs[l] = struct{}{}
		g.mu.Unlock()
		<-b.ready
		return b.err
	}
	// Lead a new batch. Sleep out the window remainder first — the
	// batch stays attached, so latecomers keep joining it — then
	// detach, wait out the previous batch's fsyncs (batches complete
	// in order), and fsync outside the lock.
	b := &syncBatch{
		logs:  map[*Log]struct{}{l: {}},
		prev:  g.last,
		ready: make(chan struct{}),
	}
	g.next = b
	g.last = b.ready
	if wait := g.window - time.Since(g.lastStart); g.window > 0 && wait > 0 {
		g.mu.Unlock()
		sleepPrecise(wait)
		g.mu.Lock()
	}
	g.next = nil
	g.lastStart = time.Now()
	g.mu.Unlock()
	if b.prev != nil {
		<-b.prev
	}
	b.err = syncAll(b.logs)
	close(b.ready)
	return b.err
}

// syncAll fsyncs every log of a batch, concurrently when there is
// more than one — separate files cannot share one fsync call, but
// parallel fsyncs commit under one journal transaction on ext4-like
// filesystems.
func syncAll(logs map[*Log]struct{}) error {
	if len(logs) == 1 {
		for l := range logs {
			return l.Sync()
		}
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for l := range logs {
		wg.Add(1)
		go func(l *Log) {
			defer wg.Done()
			if err := l.Sync(); err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}(l)
	}
	wg.Wait()
	return first
}

// --- shared durable-write helpers -------------------------------------

// WriteFileAtomic writes data to path through a temp file + rename,
// with the fsync pair that makes the rename crash-durable: the file
// is fsynced before the rename (so the new name never points at
// partial bytes) and the parent directory after (so the rename
// itself survives a crash). admitd's checkpoint writer shares it.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making renames/creates/removes in it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
