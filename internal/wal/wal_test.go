package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openT opens a log in dir, failing the test on I/O errors.
func openT(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.Dir = dir
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// collect replays the whole log into a slice (payloads copied).
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		r.Payload = append([]byte(nil), r.Payload...)
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func appendN(t *testing.T, l *Log, stream string, from, to int64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if _, err := l.Append(stream, seq, []byte(fmt.Sprintf("payload-%s-%d", stream, seq))); err != nil {
			t.Fatalf("Append(%s, %d): %v", stream, seq, err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{Policy: SyncOff})
	if rec.Truncated || rec.Records != 0 {
		t.Fatalf("fresh log recovery: %+v", rec)
	}
	appendN(t, l, "a", 1, 50)
	appendN(t, l, "b", 1, 30)
	got := collect(t, l)
	if len(got) != 80 {
		t.Fatalf("replayed %d records, want 80", len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: lsn %d", i, r.LSN)
		}
		want := fmt.Sprintf("payload-%s-%d", r.Stream, r.Seq)
		if string(r.Payload) != want {
			t.Fatalf("record %d: payload %q, want %q", i, r.Payload, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything survives a clean close, appends continue.
	l2, rec2 := openT(t, dir, Options{Policy: SyncOff})
	defer l2.Close()
	if rec2.Truncated {
		t.Fatalf("clean reopen truncated: %+v", rec2)
	}
	if rec2.Records != 80 || rec2.NextLSN != 81 {
		t.Fatalf("reopen recovery: %+v", rec2)
	}
	appendN(t, l2, "a", 51, 60)
	if got := collect(t, l2); len(got) != 90 || got[89].LSN != 90 {
		t.Fatalf("after reopen+append: %d records, last lsn %d", len(got), got[len(got)-1].LSN)
	}
}

func TestReplayStreamFilters(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncOff})
	defer l.Close()
	appendN(t, l, "a", 1, 20)
	appendN(t, l, "b", 1, 20)
	appendN(t, l, "a", 21, 40)
	var seqs []int64
	if err := l.ReplayStream("a", 15, func(r Record) error {
		if r.Stream != "a" {
			t.Fatalf("stream %q leaked through", r.Stream)
		}
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatalf("ReplayStream: %v", err)
	}
	if len(seqs) != 25 || seqs[0] != 16 || seqs[24] != 40 {
		t.Fatalf("filtered seqs: %v", seqs)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: force many rotations.
	l, _ := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 1 << 10})
	appendN(t, l, "a", 1, 200)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected several segments, got %d", st.Segments)
	}
	// Nothing covered: nothing removed.
	if n, err := l.Compact(func(string, int64) bool { return false }); err != nil || n != 0 {
		t.Fatalf("Compact(none) = %d, %v", n, err)
	}
	// Cover seqs <= 150: a strict prefix of segments goes.
	n, err := l.Compact(func(_ string, maxSeq int64) bool { return maxSeq <= 150 })
	if err != nil || n == 0 {
		t.Fatalf("Compact(<=150) = %d, %v", n, err)
	}
	got := collect(t, l)
	if len(got) == 0 || got[len(got)-1].Seq != 200 {
		t.Fatalf("tail lost after compaction: %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("gap after compaction: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	// Retained records must include everything > 150.
	if got[0].Seq > 151 {
		t.Fatalf("compaction dropped uncovered seq %d..", got[0].Seq)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Survivors stay contiguous across reopen.
	l2, rec := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 1 << 10})
	defer l2.Close()
	if rec.Truncated {
		t.Fatalf("reopen after compaction truncated: %+v", rec)
	}
	if int(rec.Records) != len(got) {
		t.Fatalf("reopen found %d records, want %d", rec.Records, len(got))
	}
}

// --- corruption torture suite ----------------------------------------

// buildLog writes records and closes the log, returning the segment
// file paths in LSN order.
func buildLog(t *testing.T, dir string, n int64, segBytes int64) []string {
	t.Helper()
	l, _ := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: segBytes})
	appendN(t, l, "s", 1, n)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range ents {
		if _, ok := segNameLSN(e.Name()); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	return paths
}

// reopenExpectTrunc reopens a damaged log and asserts recovery
// truncated with the expected surviving record count, and that the
// log still appends and replays cleanly afterward.
func reopenExpectTrunc(t *testing.T, dir string, wantRecords uint64, wantReason string) *Recovery {
	t.Helper()
	l, rec := openT(t, dir, Options{Policy: SyncOff})
	if !rec.Truncated {
		t.Fatalf("recovery did not truncate: %+v", rec)
	}
	if rec.Records != wantRecords {
		t.Fatalf("recovered %d records, want %d (%+v)", rec.Records, wantRecords, rec)
	}
	if wantReason != "" && rec.Reason != wantReason {
		t.Fatalf("reason %q, want %q", rec.Reason, wantReason)
	}
	if rec.File == "" {
		t.Fatalf("truncation point not reported: %+v", rec)
	}
	// The surviving prefix is intact and the log is appendable.
	got := collect(t, l)
	if uint64(len(got)) != wantRecords {
		t.Fatalf("replay after recovery: %d records, want %d", len(got), wantRecords)
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) || r.Seq != int64(i+1) {
			t.Fatalf("survivor %d: lsn %d seq %d", i, r.LSN, r.Seq)
		}
	}
	if _, err := l.Append("s", int64(wantRecords+1), []byte("after")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if got := collect(t, l); uint64(len(got)) != wantRecords+1 {
		t.Fatalf("append after recovery lost: %d records", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rec
}

func TestTortureTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	paths := buildLog(t, dir, 10, 1<<20)
	last := paths[len(paths)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the final record: a torn append.
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	rec := reopenExpectTrunc(t, dir, 9, "truncated frame body")
	if rec.Offset == 0 {
		t.Fatalf("no truncation offset: %+v", rec)
	}
}

func TestTortureFlippedCRCByte(t *testing.T) {
	dir := t.TempDir()
	paths := buildLog(t, dir, 10, 1<<20)
	last := paths[len(paths)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the 6th record: CRC catches it, the
	// 5 records before survive, the 5 at-and-after drop.
	off := headerSize
	for i := 0; i < 5; i++ {
		_, n, bad := parseFrame(data, off)
		if bad != "" || n == 0 {
			t.Fatalf("pre-damage parse at %d: %q", off, bad)
		}
		off += n
	}
	data[off+30] ^= 0x40
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reopenExpectTrunc(t, dir, 5, "crc mismatch")
}

func TestTortureZeroFilledPage(t *testing.T) {
	dir := t.TempDir()
	paths := buildLog(t, dir, 10, 1<<20)
	last := paths[len(paths)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A preallocated-but-never-written page at the tail: all zeros.
	if _, err := f.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rec := reopenExpectTrunc(t, dir, 10, "")
	// A zero length field is rejected as a bad frame length.
	if rec.Reason != "bad frame length 0" {
		t.Fatalf("reason %q", rec.Reason)
	}
}

func TestTortureDuplicateSegment(t *testing.T) {
	dir := t.TempDir()
	paths := buildLog(t, dir, 60, 512) // several sealed segments
	if len(paths) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(paths))
	}
	// Copy the first segment under a name sorting after the last: a
	// botched restore/copy. Its header LSN contradicts the name, so
	// recovery drops it (and everything after it — nothing is).
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	dup := filepath.Join(dir, segName(1<<40))
	if err := os.WriteFile(dup, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, dir, Options{Policy: SyncOff})
	if !rec.Truncated || rec.Reason != "segment header/name mismatch" {
		t.Fatalf("recovery: %+v", rec)
	}
	if rec.Records != 60 || rec.DroppedSegments != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	if got := collect(t, l); len(got) != 60 {
		t.Fatalf("replay: %d records, want 60", len(got))
	}
	if _, err := os.Stat(dup); !os.IsNotExist(err) {
		t.Fatalf("duplicate segment not removed")
	}
	l.Close()

	// Variant: a byte-identical duplicate of an interior segment file
	// (same header, colliding LSNs) injected between real ones.
	dir2 := t.TempDir()
	paths2 := buildLog(t, dir2, 60, 512)
	data2, err := os.ReadFile(paths2[0])
	if err != nil {
		t.Fatal(err)
	}
	// Give it a self-consistent header so only the cross-segment LSN
	// continuity check can catch it.
	first, _ := segNameLSN(filepath.Base(paths2[len(paths2)-1]))
	dup2 := filepath.Join(dir2, segName(first+1<<20))
	hdr := append([]byte(nil), data2...)
	copy(hdr[:8], segMagic)
	for i := 0; i < 8; i++ {
		hdr[8+i] = byte((first + 1<<20) >> (8 * i))
	}
	if err := os.WriteFile(dup2, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec2 := openT(t, dir2, Options{Policy: SyncOff})
	defer l2.Close()
	if !rec2.Truncated {
		t.Fatalf("interior duplicate not detected: %+v", rec2)
	}
	if rec2.Records != 60 {
		t.Fatalf("recovered %d, want 60: %+v", rec2.Records, rec2)
	}
}

// --- map-model differential fuzz --------------------------------------

// modelRec is the pure-Go model of one retained record.
type modelRec struct {
	stream string
	seq    int64
	body   string
}

// TestFuzzMapModelDifferential drives random append/rotate/compact/
// reopen schedules against an in-memory model of what the log must
// retain, checking full-replay equivalence after every reopen and at
// the end. Compaction may legally drop any checkpoint-covered prefix,
// so the model tracks the covered watermark per stream and accepts
// either retention or removal for covered records — but never a
// dropped uncovered record, and never reordering.
func TestFuzzMapModelDifferential(t *testing.T) {
	for round := 0; round < 8; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xda7a + round)))
			dir := t.TempDir()
			opts := Options{Policy: SyncOff, SegmentBytes: 256 + int64(rng.Intn(2048))}
			l, _ := openT(t, dir, opts)

			streams := []string{"s0", "s1", "s2"}
			next := map[string]int64{}
			ckpt := map[string]int64{} // covered watermark per stream
			var model []modelRec

			check := func() {
				t.Helper()
				got := collect(t, l)
				// Drop the model's covered prefix lazily: compaction may
				// or may not have removed covered records (segment
				// granularity), so align the model to what the log kept.
				gi := 0
				for _, m := range model {
					if gi < len(got) && got[gi].Stream == m.stream && got[gi].Seq == m.seq {
						if string(got[gi].Payload) != m.body {
							t.Fatalf("payload drift at %s/%d", m.stream, m.seq)
						}
						gi++
						continue
					}
					// The log dropped it: legal only when covered.
					if m.seq > ckpt[m.stream] {
						t.Fatalf("uncovered record %s/%d lost (covered to %d)", m.stream, m.seq, ckpt[m.stream])
					}
					if gi < len(got) && got[gi].LSN <= 0 {
						t.Fatalf("bad lsn")
					}
				}
				if gi != len(got) {
					t.Fatalf("log has %d extra records", len(got)-gi)
				}
			}

			for op := 0; op < 400; op++ {
				switch k := rng.Intn(100); {
				case k < 70: // append
					s := streams[rng.Intn(len(streams))]
					next[s]++
					body := fmt.Sprintf("%s#%d#%d", s, next[s], rng.Int63())
					if _, err := l.Append(s, next[s], []byte(body)); err != nil {
						t.Fatalf("append: %v", err)
					}
					model = append(model, modelRec{s, next[s], body})
				case k < 78: // commit
					if err := l.Commit(); err != nil {
						t.Fatalf("commit: %v", err)
					}
				case k < 85: // rotate
					if err := l.Rotate(); err != nil {
						t.Fatalf("rotate: %v", err)
					}
				case k < 93: // checkpoint + compact
					for _, s := range streams {
						if rng.Intn(2) == 0 {
							ckpt[s] = next[s]
						}
					}
					if _, err := l.Compact(func(stream string, maxSeq int64) bool {
						return maxSeq <= ckpt[stream]
					}); err != nil {
						t.Fatalf("compact: %v", err)
					}
					// The model prunes records all of whose segment
					// peers are covered only via check()'s alignment;
					// here just drop the provably-gone prefix: nothing
					// (segment boundaries are the log's business).
				default: // reopen
					if err := l.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
					var rec *Recovery
					l, rec = openT(t, dir, opts)
					if rec.Truncated {
						t.Fatalf("clean reopen truncated: %+v", rec)
					}
					check()
				}
			}
			check()
			l.Close()
		})
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, []byte("two")) {
		t.Fatalf("read back %q, %v", data, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind")
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncGroup, "group": SyncGroup, "always": SyncAlways, "off": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("round trip %q -> %q", in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatalf("bad policy accepted")
	}
}

func TestSyncAlwaysDurablePerAppend(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	for seq := int64(1); seq <= 5; seq++ {
		if _, err := l.Append("s", seq, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Fsyncs < 5 {
		t.Fatalf("SyncAlways fsynced %d times for 5 appends", st.Fsyncs)
	}
	// No Close, no Commit: simulate a crash by reopening the dir in a
	// second log handle — every append must already be on disk.
	l2, rec := openT(t, dir, Options{Policy: SyncAlways})
	defer l2.Close()
	if rec.Records != 5 {
		t.Fatalf("recovered %d records, want 5", rec.Records)
	}
	l.Close()
}

func TestGroupCommitFsyncCoalesces(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncGroup})
	defer l.Close()
	for seq := int64(1); seq <= 64; seq++ {
		if _, err := l.Append("s", seq, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil { // nothing new: must coalesce
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Fsyncs != 1 {
		t.Fatalf("group commit fsynced %d times for 64 appends + 2 commits, want 1", st.Fsyncs)
	}
}

// TestGroupSyncConcurrentCommits hammers one scheduler from many
// goroutines across several logs: every commit must succeed, every
// committed record must survive a reopen, and the batcher must never
// fsync more often than committers ask.
func TestGroupSyncConcurrentCommits(t *testing.T) {
	const (
		nLogs   = 4
		workers = 8
		perW    = 25
	)
	dir := t.TempDir()
	logs := make([]*Log, nLogs)
	for i := range logs {
		l, _ := openT(t, filepath.Join(dir, fmt.Sprintf("l%d", i)), Options{Policy: SyncGroup})
		logs[i] = l
	}
	g := NewGroupSync(0)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := logs[w%nLogs]
			stream := fmt.Sprintf("w%d", w)
			for i := 0; i < perW; i++ {
				if _, err := l.Append(stream, int64(i), []byte("payload")); err != nil {
					errs <- err
					return
				}
				if err := g.Commit(l); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("group commit: %v", err)
	}
	var fsyncs uint64
	for _, l := range logs {
		fsyncs += l.Stats().Fsyncs
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	if fsyncs > workers*perW {
		t.Fatalf("%d fsyncs for %d commits: the batcher amplified syncs", fsyncs, workers*perW)
	}
	// Every committed record is on disk.
	for i := range logs {
		l, rec := openT(t, filepath.Join(dir, fmt.Sprintf("l%d", i)), Options{})
		if rec.Truncated {
			t.Fatalf("log %d truncated on reopen: %+v", i, rec)
		}
		want := uint64(perW * (workers / nLogs))
		if rec.Records != want {
			t.Fatalf("log %d: %d records survived, want %d", i, rec.Records, want)
		}
		l.Close()
	}
}

// TestGroupSyncSingleCommitter: alone, the batcher degenerates to
// one fsync per commit with pending bytes — no batching overhead, no
// extra syncs.
func TestGroupSyncSingleCommitter(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncGroup})
	defer l.Close()
	g := NewGroupSync(0)
	for i := 0; i < 10; i++ {
		if _, err := l.Append("s", int64(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(l); err != nil {
			t.Fatal(err)
		}
	}
	// A commit with nothing new pending must not fsync again.
	if err := g.Commit(l); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Fsyncs; got != 10 {
		t.Fatalf("%d fsyncs for 10 dirty commits", got)
	}
}

// TestGroupSyncClosedLog: committing a closed log reports the error
// without wedging the scheduler for other logs.
func TestGroupSyncClosedLog(t *testing.T) {
	dir := t.TempDir()
	l1, _ := openT(t, filepath.Join(dir, "a"), Options{Policy: SyncGroup})
	l2, _ := openT(t, filepath.Join(dir, "b"), Options{Policy: SyncGroup})
	defer l2.Close()
	g := NewGroupSync(0)
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(l1); err == nil {
		t.Fatal("commit on a closed log succeeded")
	}
	if _, err := l2.Append("s", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(l2); err != nil {
		t.Fatalf("scheduler wedged after a closed-log commit: %v", err)
	}
}

// TestGroupSyncWindowCoalesces: with a sync window, concurrent
// committers arriving within one window share a single sync batch —
// the fsync count stays far below the commit count.
func TestGroupSyncWindowCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncGroup})
	defer l.Close()
	g := NewGroupSync(5 * time.Millisecond)
	const workers = 8
	const perW = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := l.Append(fmt.Sprintf("w%d", w), int64(i), []byte("x")); err != nil {
					errs <- err
					return
				}
				if err := g.Commit(l); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("windowed commit: %v", err)
	}
	// 40 commits in well under a handful of 5ms windows: the throttle
	// must have merged most of them. Generous bound to stay unflaky.
	if got := l.Stats().Fsyncs; got > workers*perW/2 {
		t.Fatalf("%d fsyncs for %d windowed commits: no coalescing", got, workers*perW)
	}
	got := collect(t, l)
	if len(got) != workers*perW {
		t.Fatalf("replayed %d records, want %d", len(got), workers*perW)
	}
}
