package repro

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// allAlgorithms is the full roster the paper's evaluation touches:
// the six fixed-priority partitioners/splitters and the three EDF
// ones. Every one must admit through the shared Analyzer interface.
func allAlgorithms() []partition.Algorithm {
	return []partition.Algorithm{
		partition.TS, partition.FFD, partition.WFD, partition.BFD,
		partition.SPA1, partition.SPA2,
		partition.WM, partition.EDFFFD, partition.EDFWFD,
	}
}

// Every algorithm declares a policy, stamps its assignments with it,
// and those assignments re-pass the policy's analyzer — the admission
// contract of the unified layer.
func TestAllAlgorithmsAdmitThroughAnalyzer(t *testing.T) {
	model := core.PaperOverheads()
	for _, alg := range allAlgorithms() {
		admitted := 0
		for seed := int64(1); seed <= 10; seed++ {
			set := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 2.9, Seed: seed}).Next()
			a, err := alg.Partition(set, 4, model)
			if errors.Is(err, partition.ErrUnschedulable) {
				continue
			}
			if err != nil {
				t.Fatalf("%s seed %d: %v", alg.Name(), seed, err)
			}
			admitted++
			if a.Policy != alg.Policy() {
				t.Fatalf("%s: assignment policy %v, algorithm declares %v", alg.Name(), a.Policy, alg.Policy())
			}
			an := analysis.ForPolicy(alg.Policy())
			if an.Policy() != alg.Policy() {
				t.Fatalf("%s: analyzer policy mismatch", alg.Name())
			}
			if !an.Schedulable(a, model) {
				t.Fatalf("%s seed %d: admitted assignment fails its own analyzer", alg.Name(), seed)
			}
			if !analysis.Schedulable(a, model) {
				t.Fatalf("%s seed %d: policy-dispatched Schedulable disagrees", alg.Name(), seed)
			}
		}
		if admitted == 0 {
			t.Fatalf("%s admitted nothing at U=2.9 on 4 cores; grid too hard", alg.Name())
		}
	}
}

// Cross-policy soundness: every assignment any algorithm admits via
// the Analyzer runs miss-free in the kernel simulator under the
// paper's overhead model — the end-to-end guarantee the analysis
// exists to provide.
func TestAnalyzerAdmissionImpliesZeroMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	model := core.PaperOverheads()
	for _, alg := range allAlgorithms() {
		for seed := int64(20); seed < 26; seed++ {
			set := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.1, Seed: seed}).Next()
			a, err := alg.Partition(set, 4, model)
			if err != nil {
				continue
			}
			res, err := core.Simulate(a, core.SimConfig{Model: model, Horizon: 2 * timeq.Second})
			if err != nil {
				t.Fatalf("%s seed %d: %v", alg.Name(), seed, err)
			}
			if !res.Schedulable() {
				t.Fatalf("%s seed %d: analyzer-admitted assignment missed %d deadlines; first: %v",
					alg.Name(), seed, len(res.Misses), res.Misses[0])
			}
		}
	}
}

// The deprecated wrappers stay behaviorally identical to the unified
// entry points.
func TestDeprecatedWrappersAgree(t *testing.T) {
	model := core.PaperOverheads()
	set := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.0, Seed: 4}).Next()
	if a, err := partition.TS.Partition(set.Clone(), 4, model); err == nil {
		if !core.Schedulable(a, model) {
			t.Fatal("FP assignment must pass unified Schedulable")
		}
	}
	if a, err := partition.WM.Partition(set.Clone(), 4, model); err == nil {
		if !core.Schedulable(a, model) {
			t.Fatal("EDF assignment must pass unified Schedulable (policy dispatch)")
		}
		if !core.EDFSchedulable(a, model) {
			t.Fatal("EDF assignment must pass deprecated EDFSchedulable")
		}
	}
}
