#!/bin/sh
# escape-check.sh — escape-analysis spot-check for the two analysis
# kernel files (rta.go, edf.go).
#
# The FP response-time and EDF demand-bound inner loops are written to
# keep every per-iteration value on the stack; the allocation guards
# (alloc_test.go) prove the steady state, and this check catches the
# compiler-level cause early: a local in a kernel file being "moved to
# heap" means some refactor made scratch escape, and the next bench run
# would pay an allocation per probe.
#
# Intentional heap allocations remain: memo/entity construction on the
# setup path and panic-message strings report "escapes to heap" and are
# fine. Only "moved to heap" — a stack local forced off the stack — is
# a regression.
set -eu
cd "$(dirname "$0")/.."

out="$(go build -gcflags='-m' ./internal/analysis/ 2>&1 |
	grep -E '^(\./)?internal/analysis/(rta|edf)\.go' |
	grep 'moved to heap' || true)"

if [ -n "$out" ]; then
	echo "escape-check: kernel locals moved to heap:" >&2
	echo "$out" >&2
	exit 1
fi
echo "escape-check: rta.go and edf.go kernels keep their locals on the stack"
