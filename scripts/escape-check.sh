#!/bin/sh
# escape-check.sh — escape-analysis spot-check for the sweep engine's
# kernel files.
#
# The FP response-time and EDF demand-bound inner loops (rta.go,
# edf.go), the recycling admission contexts (context_fp.go,
# context_edf.go), the cross-algorithm verdict cache (sweepcache.go),
# the pooled generator (taskgen.go NextInto/uuniFastInto) and the
# sweep worker loop (experiment.go runShard) are written to keep every
# per-iteration value on the stack; the allocation guards
# (alloc_test.go, sweep_alloc_test.go) prove the steady state, and
# this check catches the compiler-level cause early: a local in a
# kernel file being "moved to heap" means some refactor made scratch
# escape, and the next bench run would pay an allocation per probe.
#
# Intentional heap allocations remain: memo/entity construction on the
# setup path and panic-message strings report "escapes to heap" and are
# fine. Only "moved to heap" — a stack local forced off the stack — is
# a regression.
set -eu
cd "$(dirname "$0")/.."

fail=0

check() {
	# $1: label, $2: build target, $3: file regex, $4: allowlist regex
	# (variable names of known cold-path escapes; empty = none).
	out="$(go build -gcflags='-m' "$2" 2>&1 |
		grep -E "$3" |
		grep 'moved to heap' || true)"
	if [ -n "$4" ]; then
		out="$(printf '%s' "$out" | grep -vE "moved to heap: ($4)\$" || true)"
	fi
	if [ -n "$out" ]; then
		echo "escape-check: $1 locals moved to heap:" >&2
		echo "$out" >&2
		fail=1
	fi
}

check "analysis kernel" ./internal/analysis/ \
	'^(\./)?internal/analysis/(rta|edf|context_fp|context_edf|sweepcache)\.go' ""

# Cold-path allowlist: rand.rng is the generator's RNG constructed
# once in New; name is the PeriodDist JSON decoder's scratch; cfg and
# wg are RunContext's per-run setup captured by worker goroutines.
# None of these sit inside the per-set sweep loop.
check "taskgen/experiment sweep kernel" ./internal/experiment/ \
	'^(\./)?internal/(taskgen/taskgen|taskgen/setcache|experiment/experiment)\.go' \
	'rand\.rng|name|cfg|wg'

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "escape-check: sweep kernels (analysis, taskgen, experiment) keep their locals on the stack"
